//! Name/classification datasets: AS names, tags, ASdb, as2org, APNIC
//! population, World Bank, Citizen Lab, Atlas measurements.

use crate::formats::csv_line;
use crate::types::*;
use crate::world::World;
use serde_json::json;

/// RIPE NCC AS names: `<asn> <name>, <country>` lines (asn.txt format).
pub fn ripe_as_names(w: &World) -> String {
    let mut out = String::new();
    for a in &w.ases {
        out.push_str(&format!("{} {}, {}\n", a.asn, a.name, a.country));
    }
    out
}

/// BGP.Tools AS names: CSV `asn,name` with `AS`-prefixed numbers.
pub fn bgptools_as_names(w: &World) -> String {
    let mut out = String::from("asn,name\n");
    for a in &w.ases {
        out.push_str(&csv_line([format!("AS{}", a.asn), a.name.clone()]));
        out.push('\n');
    }
    out
}

/// BGP.Tools AS tags: CSV `asn,tag`.
pub fn bgptools_tags(w: &World) -> String {
    let mut out = String::from("asn,tag\n");
    for a in &w.ases {
        out.push_str(&format!("AS{},{}\n", a.asn, a.category.tag()));
        // Tier-1s additionally get a Transit tag like the real feed.
        if a.category == AsCategory::Tier1 {
            out.push_str(&format!("AS{},Transit\n", a.asn));
        }
    }
    out
}

/// BGP.Tools anycast prefixes: one prefix per line.
pub fn bgptools_anycast(w: &World) -> String {
    let mut out = String::new();
    for p in w.prefixes.iter().filter(|p| p.anycast) {
        out.push_str(&p.prefix.canonical());
        out.push('\n');
    }
    out
}

/// Emile Aben's asnames: `AS<asn> <name>` lines.
pub fn emileaben_as_names(w: &World) -> String {
    let mut out = String::new();
    for a in &w.ases {
        out.push_str(&format!("AS{} {}\n", a.asn, a.name));
    }
    out
}

/// Internet Intelligence Lab AS-to-organization: JSON lines.
pub fn inetintel_as_org(w: &World) -> String {
    let mut lines = Vec::new();
    for a in &w.ases {
        lines.push(
            serde_json::to_string(&json!({
                "asn": a.asn,
                "org_name": w.orgs[a.org].name,
                "country": w.orgs[a.org].country,
            }))
            .expect("serializable"),
        );
    }
    lines.join("\n")
}

/// Stanford ASdb: CSV with layered categories.
pub fn stanford_asdb(w: &World) -> String {
    let mut out = String::from("ASN,Category 1 - Layer 1,Category 1 - Layer 2\n");
    for a in &w.ases {
        out.push_str(&csv_line([
            format!("AS{}", a.asn),
            a.category.asdb_category().to_string(),
            a.category.tag().to_string(),
        ]));
        out.push('\n');
    }
    out
}

/// APNIC AS population estimate: JSON array of `{asn, cc, users,
/// percent}`.
pub fn apnic_population(w: &World) -> String {
    let mut entries = Vec::new();
    for (as_idx, cc, share) in &w.as_population {
        let total = w
            .country_population
            .iter()
            .find(|(c, _)| c == cc)
            .map(|(_, p)| *p)
            .unwrap_or(1_000_000);
        // Roughly 70% of a country's population is online.
        let users = (total as f64 * 0.7 * share / 100.0) as u64;
        entries.push(json!({
            "asn": w.ases[*as_idx].asn,
            "cc": cc,
            "autnum": format!("AS{}", w.ases[*as_idx].asn),
            "users": users,
            "percent": share,
        }));
    }
    serde_json::to_string(&entries).expect("serializable")
}

/// World Bank population: the API's `[meta, data]` pair structure.
pub fn worldbank_population(w: &World) -> String {
    let data: Vec<_> = w
        .country_population
        .iter()
        .map(|(cc, pop)| {
            json!({
                "country": { "id": cc, "value": cc },
                "date": "2023",
                "value": pop,
            })
        })
        .collect();
    serde_json::to_string(&json!([
        { "page": 1, "pages": 1, "per_page": 300, "total": data.len() },
        data
    ]))
    .expect("serializable")
}

/// Citizen Lab URL testing list: CSV with categories, covering a sample
/// of popular sites.
pub fn citizenlab_urls(w: &World) -> String {
    let categories = [
        ("NEWS", "News Media"),
        ("POLR", "Political Rights"),
        ("HUMR", "Human Rights"),
        ("COMM", "Communication Tools"),
        ("ECON", "Economics"),
    ];
    let mut out = String::from("url,category_code,category_description,date_added,source,notes\n");
    for (i, d) in w.domains.iter().enumerate().take(w.domains.len() / 10) {
        let (code, desc) = categories[i % categories.len()];
        out.push_str(&csv_line([
            format!("https://www.{}/", d.name),
            code.to_string(),
            desc.to_string(),
            "2024-01-01".to_string(),
            "citizenlab".to_string(),
            String::new(),
        ]));
        out.push('\n');
    }
    out
}

/// RIPE Atlas measurement information, with embedded probe metadata.
pub fn ripe_atlas_measurements(w: &World) -> String {
    let probes: Vec<_> = w
        .probes
        .iter()
        .map(|p| {
            json!({
                "id": p.id,
                "asn_v4": w.ases[p.asn_idx].asn,
                "country_code": p.country,
                "address_v4": p.ip.to_string(),
                "status": { "name": "Connected" },
            })
        })
        .collect();
    let measurements: Vec<_> = w
        .measurements
        .iter()
        .map(|m| {
            json!({
                "id": m.id,
                "target": m.target,
                "type": m.kind,
                "af": 4,
                "status": { "name": "Ongoing" },
                "probes": m.probes,
            })
        })
        .collect();
    serde_json::to_string(&json!({
        "measurements": measurements,
        "probes": probes,
    }))
    .expect("serializable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn world() -> World {
        World::generate(&SimConfig::tiny(), 11)
    }

    #[test]
    fn as_name_datasets_cover_all_ases() {
        let w = world();
        assert_eq!(ripe_as_names(&w).lines().count(), w.ases.len());
        assert_eq!(bgptools_as_names(&w).lines().count(), w.ases.len() + 1);
        assert_eq!(emileaben_as_names(&w).lines().count(), w.ases.len());
        assert_eq!(inetintel_as_org(&w).lines().count(), w.ases.len());
        assert_eq!(stanford_asdb(&w).lines().count(), w.ases.len() + 1);
    }

    #[test]
    fn tags_include_categories() {
        let w = world();
        let text = bgptools_tags(&w);
        assert!(text.contains("Content Delivery Network"));
        assert!(text.contains("Academic"));
    }

    #[test]
    fn anycast_subset() {
        let w = world();
        let n = bgptools_anycast(&w).lines().count();
        let truth = w.prefixes.iter().filter(|p| p.anycast).count();
        assert_eq!(n, truth);
    }

    #[test]
    fn population_parses() {
        let w = world();
        let v: serde_json::Value = serde_json::from_str(&apnic_population(&w)).unwrap();
        assert!(!v.as_array().unwrap().is_empty());
        let v: serde_json::Value = serde_json::from_str(&worldbank_population(&w)).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 2);
    }

    #[test]
    fn atlas_probes_and_measurements() {
        let w = world();
        let v: serde_json::Value = serde_json::from_str(&ripe_atlas_measurements(&w)).unwrap();
        assert_eq!(v["probes"].as_array().unwrap().len(), w.probes.len());
        assert_eq!(
            v["measurements"].as_array().unwrap().len(),
            w.measurements.len()
        );
    }

    #[test]
    fn citizenlab_has_header_and_urls() {
        let w = world();
        let text = citizenlab_urls(&w);
        assert!(text.starts_with("url,"));
        assert!(text.contains("https://www.site-"));
    }
}
