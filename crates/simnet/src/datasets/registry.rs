//! Registry-style datasets: NRO delegated stats, RPKI, PeeringDB,
//! CAIDA IXPs, Alice-LG looking glasses.

use crate::datasets::DatasetId;
use crate::world::World;
use iyp_netdata::AddressFamily;
use serde_json::json;

/// NRO extended allocation and assignment reports, in the standard
/// pipe-separated delegated format:
/// `registry|cc|type|start|value|date|status|opaque-id`.
pub fn nro_delegated_stats(w: &World) -> String {
    let mut out = String::new();
    // Version and summary lines, as in the real file.
    let total = w.ases.len() + w.prefixes.len();
    out.push_str(&format!(
        "2.3|nro|20240501|{total}|19830705|20240501|+0000\n"
    ));
    out.push_str(&format!("nro|*|asn|*|{}|summary\n", w.ases.len()));
    out.push_str(&format!("nro|*|ipv4|*|{}|summary\n", 0));
    for (i, a) in w.ases.iter().enumerate() {
        let rir = rir_of(a.country);
        out.push_str(&format!(
            "{rir}|{}|asn|{}|1|20050101|assigned|opaque-{:04}\n",
            a.country, a.asn, a.org
        ));
        for &pidx in &w.as_prefixes[i] {
            let p = &w.prefixes[pidx].prefix;
            match p.family() {
                AddressFamily::V4 => {
                    let count = 1u64 << (32 - p.len() as u32);
                    out.push_str(&format!(
                        "{rir}|{}|ipv4|{}|{count}|20050101|allocated|opaque-{:04}\n",
                        a.country,
                        p.network(),
                        a.org
                    ));
                }
                AddressFamily::V6 => {
                    out.push_str(&format!(
                        "{rir}|{}|ipv6|{}|{}|20050101|allocated|opaque-{:04}\n",
                        a.country,
                        p.network(),
                        p.len(),
                        a.org
                    ));
                }
            }
        }
    }
    out
}

/// Picks the RIR a country registers with.
pub fn rir_of(country: &str) -> &'static str {
    match country {
        "US" | "CA" => "arin",
        "BR" | "MX" | "AR" => "lacnic",
        "ZA" | "NG" => "afrinic",
        "JP" | "CN" | "KR" | "SG" | "AU" | "IN" | "ID" => "apnic",
        _ => "ripencc",
    }
}

/// RIPE RPKI: JSON `{roas: [{asn: "AS..", prefix, maxLength, ta}]}`.
pub fn ripe_rpki(w: &World) -> String {
    let roas: Vec<_> = w
        .roas
        .iter()
        .map(|r| {
            json!({
                "asn": format!("AS{}", r.asn),
                "prefix": r.prefix.canonical(),
                "maxLength": r.max_length,
                "ta": "sim-ta",
            })
        })
        .collect();
    serde_json::to_string(&json!({ "roas": roas })).expect("serializable")
}

/// PeeringDB `org` endpoint.
pub fn peeringdb_org(w: &World) -> String {
    let mut data = Vec::new();
    for (i, o) in w.orgs.iter().enumerate() {
        data.push(json!({
            "id": i + 1,
            "name": o.name,
            "country": o.country,
        }));
    }
    serde_json::to_string(&json!({ "data": data })).expect("serializable")
}

/// PeeringDB `ix` endpoint.
pub fn peeringdb_ix(w: &World) -> String {
    let data: Vec<_> = w
        .ixps
        .iter()
        .enumerate()
        .map(|(i, ix)| {
            json!({
                "id": i + 1,
                "name": ix.name,
                "country": ix.country,
                "city": ix.name.replace("SIM-IX ", ""),
                "org_id": 0,
            })
        })
        .collect();
    serde_json::to_string(&json!({ "data": data })).expect("serializable")
}

/// PeeringDB `ixlan` endpoint, including member connections
/// (netixlan-style entries inlined for simplicity).
pub fn peeringdb_ixlan(w: &World) -> String {
    let mut data = Vec::new();
    for (i, ix) in w.ixps.iter().enumerate() {
        let members: Vec<_> = ix
            .members
            .iter()
            .enumerate()
            .map(|(k, &m)| {
                let base = ix.peering_lan.raw_bits() as u32;
                let policy = ["Open", "Selective", "Restrictive"][k % 3];
                json!({
                    "asn": w.ases[m].asn,
                    "ipaddr4": std::net::Ipv4Addr::from(base + 2 + k as u32).to_string(),
                    "speed": 10_000 * (1 + (k % 4) as u32),
                    "policy": policy,
                })
            })
            .collect();
        data.push(json!({
            "id": i + 1,
            "ix_id": i + 1,
            "prefix": ix.peering_lan.canonical(),
            "net_list": members,
        }));
    }
    serde_json::to_string(&json!({ "data": data })).expect("serializable")
}

/// PeeringDB `fac` endpoint.
pub fn peeringdb_fac(w: &World) -> String {
    let data: Vec<_> = w
        .ixps
        .iter()
        .enumerate()
        .map(|(i, ix)| {
            json!({
                "id": i + 1,
                "name": ix.facility,
                "country": ix.country,
                "city": ix.name.replace("SIM-IX ", ""),
            })
        })
        .collect();
    serde_json::to_string(&json!({ "data": data })).expect("serializable")
}

/// PeeringDB `netfac` endpoint: which ASes are present in which
/// facility (IXP members are in the IXP's facility).
pub fn peeringdb_netfac(w: &World) -> String {
    let mut data = Vec::new();
    for (i, ix) in w.ixps.iter().enumerate() {
        for &m in &ix.members {
            data.push(json!({
                "fac_id": i + 1,
                "local_asn": w.ases[m].asn,
            }));
        }
    }
    serde_json::to_string(&json!({ "data": data })).expect("serializable")
}

/// CAIDA IXPs dataset: JSON lines with CAIDA's own IXP identifiers.
pub fn caida_ixps(w: &World) -> String {
    let mut lines = Vec::new();
    for (i, ix) in w.ixps.iter().enumerate() {
        lines.push(
            serde_json::to_string(&json!({
                "ix_id": 100 + i,
                "name": ix.name,
                "country": ix.country,
                "prefixes": { "ipv4": [ix.peering_lan.canonical()] },
            }))
            .expect("serializable"),
        );
    }
    lines.join("\n")
}

/// Alice-LG looking-glass snapshot for one IXP: the route server's
/// neighbour list.
pub fn alice_lg(w: &World, id: DatasetId) -> String {
    let slot = match id {
        DatasetId::AliceLgAmsIx => 0,
        DatasetId::AliceLgBcix => 1,
        DatasetId::AliceLgDeCix => 2,
        DatasetId::AliceLgIxBr => 3,
        DatasetId::AliceLgLinx => 4,
        DatasetId::AliceLgMegaport => 5,
        DatasetId::AliceLgNetnod => 6,
        _ => 0,
    };
    let ix = &w.ixps[slot % w.ixps.len()];
    let neighbours: Vec<_> = ix
        .members
        .iter()
        .map(|&m| {
            json!({
                "asn": w.ases[m].asn,
                "description": w.ases[m].name,
                "state": "up",
            })
        })
        .collect();
    serde_json::to_string(&json!({
        "ixp": ix.name,
        "neighbours": neighbours,
    }))
    .expect("serializable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn world() -> World {
        World::generate(&SimConfig::tiny(), 11)
    }

    #[test]
    fn delegated_format_lines() {
        let w = world();
        let text = nro_delegated_stats(&w);
        let mut asn_lines = 0;
        for line in text.lines().skip(3) {
            let parts: Vec<&str> = line.split('|').collect();
            assert_eq!(parts.len(), 8, "line {line:?}");
            if parts[2] == "asn" {
                asn_lines += 1;
            }
        }
        assert_eq!(asn_lines, w.ases.len());
    }

    #[test]
    fn rpki_roas_parse() {
        let w = world();
        let v: serde_json::Value = serde_json::from_str(&ripe_rpki(&w)).unwrap();
        let roas = v["roas"].as_array().unwrap();
        assert_eq!(roas.len(), w.roas.len());
        assert!(roas
            .iter()
            .all(|r| r["asn"].as_str().unwrap().starts_with("AS")));
    }

    #[test]
    fn peeringdb_member_counts_match() {
        let w = world();
        let v: serde_json::Value = serde_json::from_str(&peeringdb_ixlan(&w)).unwrap();
        let data = v["data"].as_array().unwrap();
        assert_eq!(data.len(), w.ixps.len());
        for (i, lan) in data.iter().enumerate() {
            assert_eq!(
                lan["net_list"].as_array().unwrap().len(),
                w.ixps[i].members.len()
            );
        }
    }

    #[test]
    fn alice_lg_lists_neighbours() {
        let w = world();
        let v: serde_json::Value =
            serde_json::from_str(&alice_lg(&w, DatasetId::AliceLgAmsIx)).unwrap();
        assert!(!v["neighbours"].as_array().unwrap().is_empty());
    }

    #[test]
    fn rir_mapping_is_total() {
        for (cc, _) in crate::build::topology::COUNTRY_POOL {
            assert!(!rir_of(cc).is_empty());
        }
    }
}
