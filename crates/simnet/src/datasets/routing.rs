//! Routing-derived datasets: BGPKIT, CAIDA ASRank, IHR, PCH, RoVista.

use crate::types::*;
use crate::world::World;
use serde_json::json;

/// BGPKIT `pfx2as`: JSON array of `{prefix, asn, count}`.
///
/// Deliberately reproduces the §6.1 lesson: a small, deterministic slice
/// of the IPv6 entries carries a *wrong origin ASN* (off by one in the
/// AS table), the kind of upstream bug the paper reports finding by
/// comparing BGPKIT against IHR's ROV dataset inside IYP.
pub fn bgpkit_pfx2as(w: &World) -> String {
    let mut entries = Vec::new();
    let mut v6_seen = 0usize;
    for (i, p) in w.prefixes.iter().enumerate() {
        let mut origin = p.origin;
        let v6 = p.prefix.family() == iyp_netdata::AddressFamily::V6;
        if v6 {
            // Every 25th IPv6 entry carries the planted origin bug.
            if v6_seen.is_multiple_of(25) {
                origin = (origin + 1) % w.ases.len();
            }
            v6_seen += 1;
        }
        entries.push(json!({
            "prefix": p.prefix.canonical(),
            "asn": w.ases[origin].asn,
            "count": 12 + (i % 40),
        }));
    }
    serde_json::to_string(&entries).expect("serializable")
}

/// BGPKIT `as2rel`: JSON array of `{asn1, asn2, rel}` where `rel` is 0
/// for peer-peer and 1 when `asn1` is the provider of `asn2`.
pub fn bgpkit_as2rel(w: &World) -> String {
    let mut entries = Vec::new();
    for (i, a) in w.ases.iter().enumerate() {
        for &p in &a.providers {
            entries.push(json!({
                "asn1": w.ases[p].asn,
                "asn2": a.asn,
                "rel": 1,
                "peers_count": 2 + (i % 7),
            }));
        }
        for &q in &a.peers {
            if q > i {
                entries.push(json!({
                    "asn1": a.asn,
                    "asn2": w.ases[q].asn,
                    "rel": 0,
                    "peers_count": 1 + (i % 5),
                }));
            }
        }
    }
    serde_json::to_string(&entries).expect("serializable")
}

/// BGPKIT `peer-stats`: collectors with their full-feed peers.
pub fn bgpkit_peer_stats(w: &World) -> String {
    let collectors = ["rrc00", "rrc01", "route-views2", "route-views.sg"];
    let mut out = Vec::new();
    for (c, name) in collectors.iter().enumerate() {
        let peers: Vec<_> = w
            .ases
            .iter()
            .enumerate()
            .filter(|(i, a)| {
                matches!(
                    a.category,
                    AsCategory::Tier1 | AsCategory::Transit | AsCategory::Eyeball
                ) && (i + c) % 3 == 0
            })
            .map(|(i, a)| {
                json!({
                    "asn": a.asn,
                    "ip": format!("192.0.2.{}", (i + c * 40) % 250 + 1),
                    "num_v4_pfxs": 900_000 + i,
                })
            })
            .collect();
        out.push(json!({ "collector": name, "peers": peers }));
    }
    serde_json::to_string(&json!({ "collectors": out })).expect("serializable")
}

/// CAIDA ASRank: JSON lines of `{asn, rank, cone_size, organization,
/// country}`, ranked by transitive customer-cone size.
pub fn caida_asrank(w: &World) -> String {
    // Customer cone via reverse provider edges.
    let mut customers: Vec<Vec<usize>> = vec![Vec::new(); w.ases.len()];
    for (i, a) in w.ases.iter().enumerate() {
        for &p in &a.providers {
            customers[p].push(i);
        }
    }
    fn cone(start: usize, customers: &[Vec<usize>]) -> usize {
        let mut seen = vec![start];
        let mut stack = vec![start];
        while let Some(x) = stack.pop() {
            for &c in &customers[x] {
                if !seen.contains(&c) {
                    seen.push(c);
                    stack.push(c);
                }
            }
        }
        seen.len()
    }
    let mut sizes: Vec<(usize, usize)> = (0..w.ases.len())
        .map(|i| (i, cone(i, &customers)))
        .collect();
    sizes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut lines = Vec::new();
    for (rank0, (i, size)) in sizes.iter().enumerate() {
        let a = &w.ases[*i];
        lines.push(
            serde_json::to_string(&json!({
                "asn": a.asn,
                "rank": rank0 + 1,
                "cone_size": size,
                "organization": w.orgs[a.org].name,
                "country": a.country,
            }))
            .expect("serializable"),
        );
    }
    lines.join("\n")
}

/// IHR hegemony: CSV `timebin,originasn,asn,hege,af`.
pub fn ihr_hegemony(w: &World) -> String {
    let mut out = String::from("timebin,originasn,asn,hege,af\n");
    for (dep, on, score) in &w.hegemony {
        out.push_str(&format!(
            "2024-05-01T00:00:00,{},{},{:.4},4\n",
            w.ases[*dep].asn, w.ases[*on].asn, score
        ));
    }
    out
}

/// IHR country dependency: CSV `country,asn,hege`.
pub fn ihr_country_dependency(w: &World) -> String {
    let mut out = String::from("country,asn,hege\n");
    // A country's dependencies: providers of its eyeball networks,
    // weighted by the eyeball's population share.
    for (as_idx, cc, share) in &w.as_population {
        for &p in &w.ases[*as_idx].providers {
            out.push_str(&format!(
                "{},{},{:.4}\n",
                cc,
                w.ases[p].asn,
                share / 100.0 * 0.8
            ));
        }
    }
    out
}

/// IHR ROV: CSV `prefix,originasn,rpki_status` (correct origins, unlike
/// the planted bug in `bgpkit_pfx2as`).
pub fn ihr_rov(w: &World) -> String {
    let mut out = String::from("prefix,originasn,rpki_status\n");
    for p in &w.prefixes {
        out.push_str(&format!(
            "{},{},{}\n",
            p.prefix.canonical(),
            w.ases[p.origin].asn,
            p.rpki.ihr_label()
        ));
    }
    out
}

/// PCH daily routing snapshot: simplified table of `prefix;as_path`
/// covering roughly 60% of announcements (PCH sees fewer routes than
/// the union of RIS and RouteViews).
pub fn pch_routing_snapshot(w: &World) -> String {
    let mut out = String::new();
    for (i, p) in w.prefixes.iter().enumerate() {
        if i % 5 >= 3 {
            continue; // 60% visibility
        }
        let origin = &w.ases[p.origin];
        let mut path = vec![origin.asn];
        let mut cur = p.origin;
        for _ in 0..3 {
            match w.ases[cur].providers.first() {
                Some(&up) => {
                    path.push(w.ases[up].asn);
                    cur = up;
                }
                None => break,
            }
        }
        path.reverse();
        let path_str: Vec<String> = path.iter().map(|a| a.to_string()).collect();
        out.push_str(&format!(
            "{};{}\n",
            p.prefix.canonical(),
            path_str.join(" ")
        ));
    }
    out
}

/// RoVista: CSV `asn,ratio` — how much of RPKI-invalid space an AS
/// filters. Adopting security-minded categories filter most.
pub fn rovista(w: &World) -> String {
    let mut out = String::from("asn,ratio\n");
    for a in &w.ases {
        let ratio = match a.category {
            AsCategory::DdosMitigation => 0.95,
            AsCategory::Tier1 => 0.85,
            AsCategory::Cdn => 0.8,
            AsCategory::Transit => 0.6,
            _ if a.rpki_adopter => 0.5,
            _ => 0.1,
        };
        out.push_str(&format!("{},{ratio}\n", a.asn));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn world() -> World {
        World::generate(&SimConfig::tiny(), 11)
    }

    #[test]
    fn pfx2as_is_valid_json_with_planted_v6_bug() {
        let w = world();
        let parsed: Vec<serde_json::Value> = serde_json::from_str(&bgpkit_pfx2as(&w)).unwrap();
        assert_eq!(parsed.len(), w.prefixes.len());
        // At least one v6 entry disagrees with ground truth.
        let mut wrong = 0;
        for (i, e) in parsed.iter().enumerate() {
            let truth = w.ases[w.prefixes[i].origin].asn as i64;
            if e["asn"].as_i64() != Some(truth) {
                wrong += 1;
                assert!(
                    e["prefix"].as_str().unwrap().contains(':'),
                    "bug must be v6-only"
                );
            }
        }
        assert!(wrong >= 1);
    }

    #[test]
    fn ihr_rov_has_header_and_all_prefixes() {
        let w = world();
        let text = ihr_rov(&w);
        assert!(text.starts_with("prefix,originasn,rpki_status\n"));
        assert_eq!(text.lines().count(), w.prefixes.len() + 1);
        assert!(text.contains("Valid") || text.contains("NotFound"));
    }

    #[test]
    fn asrank_is_sorted_by_cone() {
        let w = world();
        let text = caida_asrank(&w);
        let mut last_cone = usize::MAX;
        for line in text.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            let cone = v["cone_size"].as_u64().unwrap() as usize;
            assert!(cone <= last_cone);
            last_cone = cone;
        }
    }

    #[test]
    fn pch_sees_a_subset() {
        let w = world();
        let n = pch_routing_snapshot(&w).lines().count();
        assert!(n > 0 && n < w.prefixes.len());
    }

    #[test]
    fn as2rel_contains_both_kinds() {
        let w = world();
        let entries: Vec<serde_json::Value> = serde_json::from_str(&bgpkit_as2rel(&w)).unwrap();
        assert!(entries.iter().any(|e| e["rel"] == 1));
        assert!(entries.iter().any(|e| e["rel"] == 0));
    }

    #[test]
    fn hegemony_csv_parses() {
        let w = world();
        let text = ihr_hegemony(&w);
        for line in text.lines().skip(1).take(5) {
            assert_eq!(line.split(',').count(), 5);
        }
    }
}
