//! Small serialisation helpers shared by the dataset emitters.

/// Escapes a CSV field (quotes when it contains separators or quotes).
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Joins fields into one CSV line.
pub fn csv_line<I: IntoIterator<Item = String>>(fields: I) -> String {
    fields
        .into_iter()
        .map(|f| csv_field(&f))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_pass_through() {
        assert_eq!(csv_field("abc"), "abc");
    }

    #[test]
    fn fields_with_separators_are_quoted() {
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn lines_join() {
        assert_eq!(csv_line(["a".to_string(), "b,c".to_string()]), "a,\"b,c\"");
    }
}
