//! Synthetic-Internet generator for IYP.
//!
//! The paper ingests 46 live community datasets (Table 8). Those feeds —
//! BGP collectors, DNS measurement platforms, RPKI repositories, routing
//! registries — are not available offline, so this crate builds the
//! closest synthetic equivalent: a deterministic, seeded model of an
//! Internet (organisations, ASes, prefixes, RPKI, IXPs, a DNS ecosystem
//! with provider consolidation, rankings, measurement infrastructure) and
//! then *serialises each dataset in its native wire format* (CSV, JSON,
//! NRO delegated format, …).
//!
//! The importers in `iyp-crawlers` parse those serialised strings exactly
//! as the real IYP crawlers parse the real feeds, so the whole ETL path
//! is exercised end to end. The generator is calibrated so the headline
//! statistics of the paper's 2024 measurements (RPKI coverage around
//! half of popular prefixes, CDN adoption highest, DNS provider
//! consolidation, US-centred third-party DNS dependency…) emerge from
//! the synthetic population; `EXPERIMENTS.md` records the calibration
//! targets next to the measured values.
//!
//! Everything is reproducible: `World::generate(&SimConfig::default(), 42)`
//! always produces byte-identical datasets.

pub mod build;
pub mod chaos;
pub mod config;
pub mod datasets;
pub mod formats;
pub mod types;
pub mod world;

pub use chaos::{FaultKind, FaultPlan, FetchFault};
pub use config::SimConfig;
pub use datasets::DatasetId;
pub use types::*;
pub use world::World;
