//! Ground-truth record types for the synthetic Internet.

use iyp_netdata::Prefix;
use std::net::IpAddr;

/// Business category of an AS, mirroring the classifications found in
/// ASdb (Stanford) and the BGP.Tools tag vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsCategory {
    /// Settlement-free backbone.
    Tier1,
    /// Regional transit provider.
    Transit,
    /// Eyeball / access network.
    Eyeball,
    /// Generic stub / enterprise.
    Stub,
    /// Content delivery network.
    Cdn,
    /// Cloud / hosting provider.
    CloudHosting,
    /// Managed DNS provider.
    DnsProvider,
    /// DDoS mitigation provider.
    DdosMitigation,
    /// Academic / research network.
    Academic,
    /// Government network.
    Government,
}

/// All categories.
pub const ALL_CATEGORIES: [AsCategory; 10] = [
    AsCategory::Tier1,
    AsCategory::Transit,
    AsCategory::Eyeball,
    AsCategory::Stub,
    AsCategory::Cdn,
    AsCategory::CloudHosting,
    AsCategory::DnsProvider,
    AsCategory::DdosMitigation,
    AsCategory::Academic,
    AsCategory::Government,
];

impl AsCategory {
    /// BGP.Tools-style tag label.
    pub fn tag(self) -> &'static str {
        match self {
            AsCategory::Tier1 => "Tier1",
            AsCategory::Transit => "Transit",
            AsCategory::Eyeball => "Eyeball",
            AsCategory::Stub => "Corporate",
            AsCategory::Cdn => "Content Delivery Network",
            AsCategory::CloudHosting => "Cloud Hosting",
            AsCategory::DnsProvider => "DNS Provider",
            AsCategory::DdosMitigation => "DDoS Mitigation",
            AsCategory::Academic => "Academic",
            AsCategory::Government => "Government",
        }
    }

    /// ASdb-style business category.
    pub fn asdb_category(self) -> &'static str {
        match self {
            AsCategory::Tier1 | AsCategory::Transit => "Internet Service Provider (ISP)",
            AsCategory::Eyeball => "Internet Service Provider (ISP)",
            AsCategory::Stub => "Corporate",
            AsCategory::Cdn => "Media, Publishing, and Broadcasting",
            AsCategory::CloudHosting => "Computer and Information Technology",
            AsCategory::DnsProvider => "Computer and Information Technology",
            AsCategory::DdosMitigation => "Computer and Information Technology",
            AsCategory::Academic => "Education and Research",
            AsCategory::Government => "Government and Public Administration",
        }
    }

    /// Calibrated RPKI adoption probability (fraction of the category's
    /// prefixes covered by a ROA), matching the per-tag deployment the
    /// paper reports in §4.1.4 (Academic 16%, Government 21%, DDoS
    /// Mitigation 76%, CDN 68.4%).
    pub fn rpki_adoption(self) -> f64 {
        match self {
            AsCategory::Tier1 => 0.62,
            AsCategory::Transit => 0.55,
            AsCategory::Eyeball => 0.52,
            AsCategory::Stub => 0.35,
            AsCategory::Cdn => 0.684,
            AsCategory::CloudHosting => 0.72,
            AsCategory::DnsProvider => 0.48,
            AsCategory::DdosMitigation => 0.76,
            AsCategory::Academic => 0.16,
            AsCategory::Government => 0.21,
        }
    }
}

/// RPKI validation state of an announced (prefix, origin) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpkiStatus {
    /// No covering ROA.
    NotCovered,
    /// Covered and valid.
    Valid,
    /// Covered, invalid because the announcement is more specific than
    /// the ROA's max length.
    InvalidMaxLen,
    /// Covered, invalid because the origin AS differs from the ROA.
    InvalidOrigin,
}

impl RpkiStatus {
    /// True if a covering ROA exists.
    pub fn is_covered(self) -> bool {
        !matches!(self, RpkiStatus::NotCovered)
    }

    /// True if the announcement is invalid.
    pub fn is_invalid(self) -> bool {
        matches!(self, RpkiStatus::InvalidMaxLen | RpkiStatus::InvalidOrigin)
    }

    /// IHR ROV dataset label.
    pub fn ihr_label(self) -> &'static str {
        match self {
            RpkiStatus::NotCovered => "NotFound",
            RpkiStatus::Valid => "Valid",
            RpkiStatus::InvalidMaxLen => "Invalid,more-specific",
            RpkiStatus::InvalidOrigin => "Invalid",
        }
    }
}

/// An organisation operating one or more ASes.
#[derive(Debug, Clone)]
pub struct Org {
    /// Organisation name, e.g. `Telecom 17 Ltd.`.
    pub name: String,
    /// Registration country (alpha-2).
    pub country: &'static str,
}

/// An autonomous system.
#[derive(Debug, Clone)]
pub struct AsInfo {
    /// AS number.
    pub asn: u32,
    /// Network name (short handle), e.g. `NET-17`.
    pub name: String,
    /// Index into [`crate::world::World::orgs`].
    pub org: usize,
    /// Registration country (alpha-2).
    pub country: &'static str,
    /// Business category.
    pub category: AsCategory,
    /// Provider ASes (indexes into the AS table).
    pub providers: Vec<usize>,
    /// Peer ASes (indexes into the AS table).
    pub peers: Vec<usize>,
    /// RPKI adopter: when true the AS registers ROAs for its prefixes.
    pub rpki_adopter: bool,
}

/// An announced prefix.
#[derive(Debug, Clone)]
pub struct PrefixInfo {
    /// The prefix, canonical.
    pub prefix: Prefix,
    /// Index of the originating AS.
    pub origin: usize,
    /// RPKI state of this announcement.
    pub rpki: RpkiStatus,
    /// True if operated as anycast.
    pub anycast: bool,
}

/// A published ROA (RPKI route origin authorisation).
#[derive(Debug, Clone)]
pub struct Roa {
    /// Authorized prefix.
    pub prefix: Prefix,
    /// Authorized origin ASN.
    pub asn: u32,
    /// Maximum length.
    pub max_length: u8,
}

/// An IXP with its members.
#[derive(Debug, Clone)]
pub struct IxpInfo {
    /// IXP name, e.g. `SIM-IX Tokyo`.
    pub name: String,
    /// Country (alpha-2).
    pub country: &'static str,
    /// Member AS indexes.
    pub members: Vec<usize>,
    /// Peering LAN prefix.
    pub peering_lan: Prefix,
    /// Co-location facility name.
    pub facility: String,
}

/// A managed DNS provider.
#[derive(Debug, Clone)]
pub struct DnsProvider {
    /// Provider name, e.g. `globaldns`.
    pub name: String,
    /// The provider's own domain, e.g. `globaldns.net`.
    pub domain: String,
    /// Index of the AS hosting the provider's nameservers.
    pub asn_idx: usize,
    /// Nameserver hostnames in the provider's pool.
    pub ns_pool: Vec<String>,
    /// Number of distinct NS-set variants handed to customers; the
    /// larger this is, the smaller the exact-set sharing groups.
    pub set_variants: usize,
    /// Precomputed NS sets, one per variant; customers are assigned a
    /// variant and share its exact set (drives Table 4's grouping).
    pub variants: Vec<Vec<String>>,
    /// If the provider outsources its own zone, the index of the
    /// provider serving it (third-party dependency chain).
    pub outsourced_to: Option<usize>,
    /// Registrar-style "vanity NS": customers get `ns1.<their-domain>`
    /// names hosted on the provider's AS. Such domains depend on the
    /// provider *directly* but not on the provider's own zone — the
    /// GoDaddy-vs-Akamai contrast of Figure 6.
    pub vanity: bool,
}

/// How a domain's web content is hosted, driving RPKI statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostingKind {
    /// Served from a CDN AS.
    Cdn,
    /// Served from a cloud/hosting AS.
    Cloud,
    /// Self-hosted on a stub/enterprise AS.
    SelfHosted,
}

/// A ranked domain with its DNS and hosting ground truth.
#[derive(Debug, Clone)]
pub struct Domain {
    /// Second-level domain name, e.g. `site-000042.com`.
    pub name: String,
    /// TLD (without dot), e.g. `com`.
    pub tld: &'static str,
    /// Tranco-like rank (1-based).
    pub rank: usize,
    /// Umbrella-like rank, if listed.
    pub umbrella_rank: Option<usize>,
    /// DNS provider index, or `None` when self-hosting its NS.
    pub dns_provider: Option<usize>,
    /// Nameserver hostnames serving this domain.
    pub nameservers: Vec<String>,
    /// Index of the AS hosting the web content.
    pub hosting_as: usize,
    /// Hosting kind.
    pub hosting: HostingKind,
    /// Resolved web IPs (apex / www).
    pub web_ips: Vec<IpAddr>,
}

/// A nameserver hostname with its resolved addresses.
#[derive(Debug, Clone)]
pub struct NameServer {
    /// Hostname, e.g. `ns1.globaldns.net`.
    pub name: String,
    /// Resolved IPv4/IPv6 addresses.
    pub ips: Vec<IpAddr>,
    /// Index of the AS hosting those addresses.
    pub asn_idx: usize,
}

/// A ccTLD or gTLD with its registry operator.
#[derive(Debug, Clone)]
pub struct Tld {
    /// Label without dot, e.g. `com`, `ru`.
    pub name: &'static str,
    /// Registry country (alpha-2) — drives the hierarchical SPoF.
    pub country: &'static str,
    /// True for country-code TLDs.
    pub cc: bool,
    /// Registry nameserver hostnames.
    pub nameservers: Vec<String>,
}

/// A RIPE-Atlas-like probe.
#[derive(Debug, Clone)]
pub struct Probe {
    /// Probe id.
    pub id: u32,
    /// AS index it is located in.
    pub asn_idx: usize,
    /// Country (alpha-2).
    pub country: &'static str,
    /// Assigned IPv4 address.
    pub ip: IpAddr,
}

/// An Atlas-like measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Measurement id.
    pub id: u32,
    /// Target hostname.
    pub target: String,
    /// Measurement type (ping/traceroute).
    pub kind: &'static str,
    /// Participating probe ids.
    pub probes: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_calibration_matches_paper() {
        assert!((AsCategory::Cdn.rpki_adoption() - 0.684).abs() < 1e-9);
        assert!((AsCategory::Academic.rpki_adoption() - 0.16).abs() < 1e-9);
        assert!((AsCategory::Government.rpki_adoption() - 0.21).abs() < 1e-9);
        assert!((AsCategory::DdosMitigation.rpki_adoption() - 0.76).abs() < 1e-9);
    }

    #[test]
    fn rpki_status_flags() {
        assert!(!RpkiStatus::NotCovered.is_covered());
        assert!(RpkiStatus::Valid.is_covered());
        assert!(!RpkiStatus::Valid.is_invalid());
        assert!(RpkiStatus::InvalidMaxLen.is_invalid());
        assert!(RpkiStatus::InvalidOrigin.is_covered());
        assert_eq!(
            RpkiStatus::InvalidMaxLen.ihr_label(),
            "Invalid,more-specific"
        );
    }

    #[test]
    fn tags_are_distinct() {
        let mut tags: Vec<&str> = ALL_CATEGORIES.iter().map(|c| c.tag()).collect();
        tags.sort();
        tags.dedup();
        assert_eq!(tags.len(), ALL_CATEGORIES.len());
    }
}
