//! The synthetic-Internet ground truth.

use crate::build;
use crate::config::SimConfig;
use crate::types::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Fixed "fetch time" stamped on the generated datasets: 2024-05-01,
/// the snapshot date the paper's reproduction section uses.
pub const SNAPSHOT_TIME: i64 = 1_714_521_600;

/// The complete generated world. All vectors are index-linked: an AS is
/// referred to everywhere by its index into [`World::ases`].
#[derive(Debug)]
pub struct World {
    /// Generation configuration.
    pub config: SimConfig,
    /// RNG seed used.
    pub seed: u64,
    /// Organisations.
    pub orgs: Vec<Org>,
    /// Autonomous systems.
    pub ases: Vec<AsInfo>,
    /// Announced prefixes.
    pub prefixes: Vec<PrefixInfo>,
    /// Per-AS announced prefix indexes (same order as `ases`).
    pub as_prefixes: Vec<Vec<usize>>,
    /// Published ROAs.
    pub roas: Vec<Roa>,
    /// IXPs.
    pub ixps: Vec<IxpInfo>,
    /// TLDs.
    pub tlds: Vec<Tld>,
    /// Managed DNS providers.
    pub providers: Vec<DnsProvider>,
    /// Ranked domains (index = rank - 1).
    pub domains: Vec<Domain>,
    /// All nameservers (providers, self-hosted, TLD registries).
    pub nameservers: Vec<NameServer>,
    /// Nameserver name → index into `nameservers`.
    pub ns_index: HashMap<String, usize>,
    /// Atlas-like probes.
    pub probes: Vec<Probe>,
    /// Atlas-like measurements.
    pub measurements: Vec<Measurement>,
    /// Hegemony triples: (dependent AS, dependency AS, score).
    pub hegemony: Vec<(usize, usize, f64)>,
    /// Country populations.
    pub country_population: Vec<(&'static str, u64)>,
    /// (AS, country, percentage of the country's users).
    pub as_population: Vec<(usize, &'static str, f64)>,
    /// Unix time stamped on datasets.
    pub fetch_time: i64,
}

impl World {
    /// Generates a world deterministically from a config and seed.
    pub fn generate(config: &SimConfig, seed: u64) -> World {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = World {
            config: config.clone(),
            seed,
            orgs: Vec::new(),
            ases: Vec::new(),
            prefixes: Vec::new(),
            as_prefixes: Vec::new(),
            roas: Vec::new(),
            ixps: Vec::new(),
            tlds: Vec::new(),
            providers: Vec::new(),
            domains: Vec::new(),
            nameservers: Vec::new(),
            ns_index: HashMap::new(),
            probes: Vec::new(),
            measurements: Vec::new(),
            hegemony: Vec::new(),
            country_population: Vec::new(),
            as_population: Vec::new(),
            fetch_time: SNAPSHOT_TIME,
        };
        build::topology::build(&mut w, &mut rng);
        build::dns::build(&mut w, &mut rng);
        build::misc::build(&mut w, &mut rng);
        w
    }

    /// AS index by ASN.
    pub fn as_by_asn(&self, asn: u32) -> Option<usize> {
        self.ases.iter().position(|a| a.asn == asn)
    }

    /// The nameserver record for a hostname, if known.
    pub fn nameserver(&self, name: &str) -> Option<&NameServer> {
        self.ns_index.get(name).map(|&i| &self.nameservers[i])
    }

    /// All ASes of a category.
    pub fn ases_of(&self, cat: AsCategory) -> impl Iterator<Item = (usize, &AsInfo)> {
        self.ases
            .iter()
            .enumerate()
            .filter(move |(_, a)| a.category == cat)
    }

    /// Ground-truth fraction of announced prefixes covered by RPKI.
    pub fn rpki_covered_fraction(&self) -> f64 {
        let covered = self.prefixes.iter().filter(|p| p.rpki.is_covered()).count();
        covered as f64 / self.prefixes.len().max(1) as f64
    }

    /// The TLD record for a label.
    pub fn tld(&self, label: &str) -> Option<&Tld> {
        self.tlds.iter().find(|t| t.name == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(&SimConfig::tiny(), 7);
        let b = World::generate(&SimConfig::tiny(), 7);
        assert_eq!(a.ases.len(), b.ases.len());
        assert_eq!(a.domains.len(), b.domains.len());
        for (x, y) in a.domains.iter().zip(b.domains.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.nameservers, y.nameservers);
            assert_eq!(x.web_ips, y.web_ips);
        }
        for (x, y) in a.prefixes.iter().zip(b.prefixes.iter()) {
            assert_eq!(x.prefix, y.prefix);
            assert_eq!(x.rpki, y.rpki);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(&SimConfig::tiny(), 1);
        let b = World::generate(&SimConfig::tiny(), 2);
        let same = a
            .domains
            .iter()
            .zip(b.domains.iter())
            .filter(|(x, y)| x.nameservers == y.nameservers)
            .count();
        assert!(same < a.domains.len());
    }

    #[test]
    fn world_is_consistent() {
        let w = World::generate(&SimConfig::small(), 42);
        assert_eq!(w.ases.len(), w.config.num_ases);
        assert_eq!(w.domains.len(), w.config.num_domains);
        assert_eq!(w.as_prefixes.len(), w.ases.len());
        // Every prefix's origin AS owns it.
        for (i, p) in w.prefixes.iter().enumerate() {
            assert!(w.as_prefixes[p.origin].contains(&i));
        }
        // Every domain's nameservers resolve.
        for d in &w.domains {
            assert!(!d.nameservers.is_empty(), "{} has no NS", d.name);
            for ns in &d.nameservers {
                assert!(w.nameserver(ns).is_some(), "unknown NS {ns}");
            }
            assert!(!d.web_ips.is_empty());
        }
        // Ranks are 1..=n.
        for (i, d) in w.domains.iter().enumerate() {
            assert_eq!(d.rank, i + 1);
        }
        // Measurements reference real probes.
        for m in &w.measurements {
            for pid in &m.probes {
                assert!(w.probes.iter().any(|p| p.id == *pid));
            }
        }
        // Hegemony references valid ASes.
        for (a, b, s) in &w.hegemony {
            assert!(*a < w.ases.len() && *b < w.ases.len());
            assert!(*s > 0.0 && *s <= 1.0);
        }
    }

    #[test]
    fn rpki_calibration_is_plausible() {
        let w = World::generate(&SimConfig::small(), 42);
        let f = w.rpki_covered_fraction();
        assert!(f > 0.25 && f < 0.75, "covered fraction {f}");
        // Invalids exist but are rare.
        let invalid = w.prefixes.iter().filter(|p| p.rpki.is_invalid()).count();
        assert!((invalid as f64) / (w.prefixes.len() as f64) < 0.02);
        // ROAs correspond to covered prefixes.
        assert_eq!(
            w.roas.len(),
            w.prefixes.iter().filter(|p| p.rpki.is_covered()).count()
        );
    }

    #[test]
    fn dns_ground_truth_shape() {
        let w = World::generate(&SimConfig::small(), 42);
        // com/net/org cover roughly half the list.
        let cno = w
            .domains
            .iter()
            .filter(|d| matches!(d.tld, "com" | "net" | "org"))
            .count() as f64
            / w.domains.len() as f64;
        assert!(cno > 0.40 && cno < 0.60, "com/net/org share {cno}");
        // Provider consolidation: the largest provider serves many domains.
        let mut counts = vec![0usize; w.providers.len()];
        for d in &w.domains {
            if let Some(p) = d.dns_provider {
                counts[p] += 1;
            }
        }
        let max = counts.iter().max().copied().unwrap_or(0);
        assert!(max as f64 / w.domains.len() as f64 > 0.05);
        // TLD registries exist for every TLD.
        for t in &w.tlds {
            assert_eq!(t.nameservers.len(), 4);
            for ns in &t.nameservers {
                assert!(w.nameserver(ns).is_some());
            }
        }
    }
}
