//! Cross-dataset comparison (§6.1, "Datasets comparison").
//!
//! The paper reports discovering an error in BGPKIT's IPv6
//! prefix-to-AS data by diffing it against IHR's ROV dataset inside
//! IYP. This module is that diff: thanks to parallel relationships
//! tagged with `reference_name`, the disagreement is a three-line
//! query.

use crate::util::{get_int, get_str, run};
use iyp_graph::Graph;

/// Query: prefixes whose BGPKIT origin differs from their IHR origin.
pub const Q_ORIGIN_DISAGREEMENT: &str = "
    MATCH (a1:AS)-[:ORIGINATE {reference_name:'bgpkit.pfx2as'}]-(p:Prefix)\
          -[:ORIGINATE {reference_name:'ihr.rov'}]-(a2:AS)
    WHERE a1.asn <> a2.asn
    RETURN DISTINCT p.prefix AS prefix, a1.asn AS bgpkit_origin, a2.asn AS ihr_origin";

/// One disagreement between the two prefix-to-AS datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OriginDisagreement {
    /// The affected prefix.
    pub prefix: String,
    /// Origin according to BGPKIT.
    pub bgpkit_origin: u32,
    /// Origin according to IHR.
    pub ihr_origin: u32,
}

/// Finds all prefixes on which BGPKIT and IHR disagree about the
/// origin AS.
pub fn find_origin_disagreements(graph: &Graph) -> Vec<OriginDisagreement> {
    let rs = run(graph, Q_ORIGIN_DISAGREEMENT);
    let mut out = Vec::with_capacity(rs.rows.len());
    for row in &rs.rows {
        let (Some(prefix), Some(b), Some(i)) =
            (get_str(&row[0]), get_int(&row[1]), get_int(&row[2]))
        else {
            continue;
        };
        out.push(OriginDisagreement {
            prefix,
            bgpkit_origin: b as u32,
            ihr_origin: i as u32,
        });
    }
    out.sort_by(|a, b| a.prefix.cmp(&b.prefix));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_pipeline::{build_graph, BuildOptions};
    use iyp_simnet::{DatasetId, SimConfig, World};

    #[test]
    fn finds_the_planted_bgpkit_v6_bug() {
        let world = World::generate(&SimConfig::small(), 42);
        let opts = BuildOptions::only(&[DatasetId::BgpkitPfx2as, DatasetId::IhrRov]);
        let (graph, _) = build_graph(&world, &opts).unwrap();
        let diffs = find_origin_disagreements(&graph);
        assert!(!diffs.is_empty(), "planted bug not found");
        // The paper's bug was IPv6-only; so is ours.
        for d in &diffs {
            assert!(
                d.prefix.contains(':'),
                "unexpected IPv4 disagreement: {d:?}"
            );
            assert_ne!(d.bgpkit_origin, d.ihr_origin);
        }
        // IHR matches ground truth; BGPKIT is the wrong one.
        for d in &diffs {
            let idx = world
                .prefixes
                .iter()
                .position(|p| p.prefix.canonical() == d.prefix)
                .expect("prefix exists in ground truth");
            let truth = world.ases[world.prefixes[idx].origin].asn;
            assert_eq!(d.ihr_origin, truth);
            assert_ne!(d.bgpkit_origin, truth);
        }
    }
}
