//! DNS Robustness reproduction (§4.2, Tables 3–5).
//!
//! The original study surveyed DNS best practices for popular
//! `.com/.net/.org` domains using zone files; we follow the paper's IYP
//! reproduction, which substitutes OpenINTEL NS measurements and
//! replicates the original limitations (3 TLDs, in-zone glue,
//! /24 grouping), then lifts them (Table 5) using BGP prefixes and the
//! whole Tranco list.

use crate::util::{get_str, get_str_list, median, pct, registered_domain, run, slash24_of, tld_of};
use iyp_graph::Graph;
use std::collections::{BTreeMap, HashMap};

/// Query: ranked domains, their nameservers, and each nameserver's
/// IPv4 addresses (the Listing 5 data-extraction pattern).
pub const Q_DOMAIN_NS_IPS: &str = "
    MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(d:DomainName)\
          -[:MANAGED_BY]-(a:AuthoritativeNameServer)
    OPTIONAL MATCH (a)-[:RESOLVES_TO]-(i:IP {af:4})
    RETURN d.name AS domain, a.name AS ns, collect(DISTINCT i.ip) AS ips";

/// Query: each nameserver's BGP prefixes via the refinement links (the
/// Listing 6 pattern).
pub const Q_NS_BGP_PREFIXES: &str = "
    MATCH (a:AuthoritativeNameServer)-[:RESOLVES_TO]-(i:IP {af:4})-[:PART_OF]-(pfx:Prefix)
    RETURN a.name AS ns, collect(DISTINCT pfx.prefix) AS prefixes";

/// The three zones of the original study.
pub const STUDY_TLDS: [&str; 3] = ["com", "net", "org"];

/// One domain's resolved NS infrastructure.
#[derive(Debug, Clone, Default)]
struct DomainNs {
    /// Nameserver hostnames.
    ns: Vec<String>,
    /// NS hostname → IPv4 addresses.
    ips: HashMap<String, Vec<String>>,
}

/// Pulls the domain → nameserver structure from the graph.
fn domain_ns_map(graph: &Graph) -> BTreeMap<String, DomainNs> {
    let rs = run(graph, Q_DOMAIN_NS_IPS);
    let mut map: BTreeMap<String, DomainNs> = BTreeMap::new();
    for row in &rs.rows {
        let (Some(domain), Some(ns)) = (get_str(&row[0]), get_str(&row[1])) else {
            continue;
        };
        let ips = get_str_list(&row[2]);
        let e = map.entry(domain).or_default();
        e.ns.push(ns.clone());
        e.ips.insert(ns, ips);
    }
    map
}

/// Table 3: best-practice compliance for `.com/.net/.org` domains.
#[derive(Debug, Clone, PartialEq)]
pub struct BestPractices {
    /// Fraction of the ranked list covered by the three zones (%).
    pub coverage_pct: f64,
    /// Domains discarded for lack of in-zone glue (%).
    pub discarded_pct: f64,
    /// Domains with exactly two nameservers in ≥2 locations (%).
    pub meet_pct: f64,
    /// Domains with more than two nameservers in ≥2 locations (%).
    pub exceed_pct: f64,
    /// Domains below the RFC 2182 bar (%).
    pub not_meet_pct: f64,
    /// Share of kept domains' NS records with in-zone glue (%).
    pub in_zone_glue_pct: f64,
}

/// True if the NS hostname has glue available in the studied zones,
/// i.e. its registered domain falls under one of the three TLDs.
fn in_zone(ns: &str) -> bool {
    registered_domain(ns)
        .map(|reg| STUDY_TLDS.contains(&tld_of(&reg)))
        .unwrap_or(false)
}

/// Computes Table 3 (best practices), replicating the original study's
/// limitations: only `.com/.net/.org` domains, only in-zone glue.
pub fn best_practices(graph: &Graph) -> BestPractices {
    let map = domain_ns_map(graph);
    let total = map.len();
    let cno: Vec<(&String, &DomainNs)> = map
        .iter()
        .filter(|(d, _)| STUDY_TLDS.contains(&tld_of(d)))
        .collect();
    let coverage = cno.len();

    let mut discarded = 0usize;
    let mut meet = 0usize;
    let mut exceed = 0usize;
    let mut not_meet = 0usize;
    let mut glue_in = 0usize;
    let mut glue_total = 0usize;

    for (_, info) in &cno {
        // Replicate the zone-file limitation: only NS with glue in the
        // three zones are visible. Glue availability is measured over
        // every delegation in the studied zones, including the
        // discarded ones.
        let visible: Vec<&String> = info.ns.iter().filter(|ns| in_zone(ns)).collect();
        glue_total += info.ns.len();
        glue_in += visible.len();
        if visible.is_empty() {
            discarded += 1;
            continue;
        }

        // Distinct /24 locations of the visible nameservers.
        let mut slash24s: Vec<String> = visible
            .iter()
            .flat_map(|ns| info.ips.get(*ns).into_iter().flatten())
            .filter_map(|ip| slash24_of(ip))
            .collect();
        slash24s.sort();
        slash24s.dedup();

        let ns_count = visible.len();
        if ns_count < 2 || slash24s.len() < 2 {
            not_meet += 1;
        } else if ns_count == 2 {
            meet += 1;
        } else {
            exceed += 1;
        }
    }

    BestPractices {
        coverage_pct: pct(coverage, total),
        discarded_pct: pct(discarded, coverage),
        meet_pct: pct(meet, coverage),
        exceed_pct: pct(exceed, coverage),
        not_meet_pct: pct(not_meet, coverage),
        in_zone_glue_pct: pct(glue_in, glue_total),
    }
}

/// Grouping statistics: how many domains share identical infrastructure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupingStats {
    /// Median (over domains) of the size of the domain's sharing group.
    pub median: usize,
    /// Size of the largest group.
    pub max: usize,
    /// Number of distinct groups.
    pub groups: usize,
}

/// Groups domains by a key (NS set, /24 set, prefix set) and reports
/// the distribution of group sizes.
fn group_stats<I: Iterator<Item = (String, Vec<String>)>>(items: I) -> GroupingStats {
    let mut groups: HashMap<String, usize> = HashMap::new();
    let mut keys: Vec<String> = Vec::new();
    for (_, mut key_parts) in items {
        if key_parts.is_empty() {
            continue;
        }
        key_parts.sort();
        key_parts.dedup();
        let key = key_parts.join("|");
        *groups.entry(key.clone()).or_default() += 1;
        keys.push(key);
    }
    let mut sizes: Vec<usize> = keys.iter().map(|k| groups[k]).collect();
    GroupingStats {
        median: median(&mut sizes),
        max: groups.values().max().copied().unwrap_or(0),
        groups: groups.len(),
    }
}

/// Tables 4 and 5: shared-infrastructure statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedInfra {
    /// Table 4 left: `.com/.net/.org` grouped by exact NS set.
    pub cno_by_ns: GroupingStats,
    /// Table 4 right: `.com/.net/.org` grouped by the /24s of the NS.
    pub cno_by_slash24: GroupingStats,
    /// Table 5 row 1: `.com/.net/.org` grouped by BGP prefix.
    pub cno_by_prefix: GroupingStats,
    /// Table 5 row 2: all Tranco grouped by BGP prefix.
    pub all_by_prefix: GroupingStats,
    /// Table 5 row 3: all Tranco grouped by NS set.
    pub all_by_ns: GroupingStats,
}

/// Computes Tables 4 and 5.
pub fn shared_infrastructure(graph: &Graph) -> SharedInfra {
    let map = domain_ns_map(graph);

    // NS → BGP prefixes (Listing 6 pattern).
    let rs = run(graph, Q_NS_BGP_PREFIXES);
    let mut ns_prefixes: HashMap<String, Vec<String>> = HashMap::new();
    for row in &rs.rows {
        if let Some(ns) = get_str(&row[0]) {
            ns_prefixes.insert(ns, get_str_list(&row[1]));
        }
    }

    let is_cno = |d: &str| STUDY_TLDS.contains(&tld_of(d));
    // The original study's scope: in-zone NS only for the 3-TLD rows.
    let visible_ns = |info: &DomainNs, replicate: bool| -> Vec<String> {
        info.ns
            .iter()
            .filter(|ns| !replicate || in_zone(ns))
            .cloned()
            .collect()
    };
    let slash24s_of = |info: &DomainNs, ns_set: &[String]| -> Vec<String> {
        ns_set
            .iter()
            .flat_map(|ns| info.ips.get(ns).into_iter().flatten())
            .filter_map(|ip| slash24_of(ip))
            .collect()
    };
    let prefixes_of = |ns_set: &[String]| -> Vec<String> {
        ns_set
            .iter()
            .flat_map(|ns| ns_prefixes.get(ns).cloned().unwrap_or_default())
            .collect()
    };

    let cno_by_ns = group_stats(
        map.iter()
            .filter(|(d, _)| is_cno(d))
            .map(|(d, info)| (d.clone(), visible_ns(info, true))),
    );
    let cno_by_slash24 = group_stats(map.iter().filter(|(d, _)| is_cno(d)).map(|(d, info)| {
        let ns = visible_ns(info, true);
        (d.clone(), slash24s_of(info, &ns))
    }));
    let cno_by_prefix = group_stats(map.iter().filter(|(d, _)| is_cno(d)).map(|(d, info)| {
        let ns = visible_ns(info, true);
        (d.clone(), prefixes_of(&ns))
    }));
    let all_by_prefix = group_stats(map.iter().map(|(d, info)| {
        let ns = visible_ns(info, false);
        (d.clone(), prefixes_of(&ns))
    }));
    let all_by_ns = group_stats(
        map.iter()
            .map(|(d, info)| (d.clone(), visible_ns(info, false))),
    );

    SharedInfra {
        cno_by_ns,
        cno_by_slash24,
        cno_by_prefix,
        all_by_prefix,
        all_by_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_pipeline::{build_graph, BuildOptions};
    use iyp_simnet::{SimConfig, World};

    fn graph() -> Graph {
        let world = World::generate(&SimConfig::small(), 42);
        build_graph(&world, &BuildOptions::default()).unwrap().0
    }

    #[test]
    fn table3_shape_holds() {
        let g = graph();
        let r = best_practices(&g);
        // Coverage ≈ 49% (paper Table 3).
        assert!(
            r.coverage_pct > 40.0 && r.coverage_pct < 60.0,
            "coverage {}",
            r.coverage_pct
        );
        // 2024 shape: exceed ≫ meet ≫ not-meet; some discarded.
        assert!(
            r.exceed_pct > r.meet_pct,
            "exceed {} meet {}",
            r.exceed_pct,
            r.meet_pct
        );
        assert!(
            r.meet_pct > r.not_meet_pct,
            "meet {} not {}",
            r.meet_pct,
            r.not_meet_pct
        );
        assert!(
            r.discarded_pct > 1.0 && r.discarded_pct < 30.0,
            "discarded {}",
            r.discarded_pct
        );
        assert!(r.in_zone_glue_pct > 50.0, "glue {}", r.in_zone_glue_pct);
        // Sanity: the four buckets cover all com/net/org domains.
        let sum = r.discarded_pct + r.meet_pct + r.exceed_pct + r.not_meet_pct;
        assert!((sum - 100.0).abs() < 1.0, "buckets sum to {sum}");
    }

    #[test]
    fn table45_shape_holds() {
        let g = graph();
        let r = shared_infrastructure(&g);
        // Consolidation grows with coarser grouping (Table 4 shape):
        // NS-set groups < /24 groups ≤ prefix groups (max sizes).
        assert!(r.cno_by_ns.max <= r.cno_by_slash24.max);
        assert!(r.cno_by_ns.median <= r.cno_by_slash24.median);
        // BGP-prefix grouping is close to /24 grouping (paper: "almost
        // identical") — allow slack but require the same magnitude.
        assert!(r.cno_by_prefix.max * 3 >= r.cno_by_slash24.max);
        // All-Tranco groups are at least as large as the 3-TLD subsets.
        assert!(r.all_by_ns.max >= r.cno_by_ns.max);
        assert!(r.all_by_prefix.max >= r.cno_by_prefix.max);
        assert!(r.all_by_ns.groups > 0 && r.cno_by_ns.groups > 0);
    }
}
