//! New insights (§5.1): combining RiPKI and DNS Robustness.

use crate::ripki::Q_PREFIX_RPKI;
use crate::util::{get_str, get_str_list, pct, run};
use iyp_graph::Graph;
use std::collections::{HashMap, HashSet};

/// Query: Tranco domains with the BGP prefixes of their nameservers
/// (the central MANAGED_BY branch of Figure 4).
pub const Q_DOMAIN_NS_PREFIXES: &str = "
    MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(d:DomainName)\
          -[:MANAGED_BY]-(:AuthoritativeNameServer)\
          -[:RESOLVES_TO]-(:IP)-[:PART_OF]-(pfx:Prefix)
    RETURN d.name AS domain, collect(DISTINCT pfx.prefix) AS prefixes";

/// Query: Tranco domains with their web-hosting prefixes, for the
/// domain-weighted variant of Table 2 (count hostnames, not prefixes).
pub const Q_DOMAIN_WEB_PREFIXES: &str = "
    MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(d:DomainName)-[:PART_OF]-(:HostName)\
          -[:RESOLVES_TO]-(:IP)-[:PART_OF]-(pfx:Prefix)
    RETURN d.name AS domain, collect(DISTINCT pfx.prefix) AS prefixes";

/// Query: prefixes of CDN-tagged ASes.
pub const Q_CDN_PREFIXES: &str = "
    MATCH (:Tag {label:'Content Delivery Network'})-[:CATEGORIZED]-(a:AS)-[:ORIGINATE]-(pfx:Prefix)
    RETURN DISTINCT pfx.prefix AS prefix";

/// §5.1.1: RPKI coverage of the DNS infrastructure.
#[derive(Debug, Clone, PartialEq)]
pub struct NameserverRpki {
    /// Distinct prefixes hosting nameservers of Tranco domains.
    pub ns_prefixes: usize,
    /// % of those prefixes covered by RPKI (paper: 48%).
    pub prefix_covered_pct: f64,
    /// % of Tranco domains whose nameservers sit in RPKI-covered
    /// prefixes (paper: 84%).
    pub domain_covered_pct: f64,
}

fn rpki_covered_set(graph: &Graph) -> HashSet<String> {
    let rs = run(graph, Q_PREFIX_RPKI);
    rs.rows.iter().filter_map(|row| get_str(&row[0])).collect()
}

/// Computes the §5.1.1 nameserver-RPKI numbers.
pub fn nameserver_rpki(graph: &Graph) -> NameserverRpki {
    let covered = rpki_covered_set(graph);
    let rs = run(graph, Q_DOMAIN_NS_PREFIXES);
    let mut all: HashSet<String> = HashSet::new();
    let mut domains = 0usize;
    let mut domains_covered = 0usize;
    for row in &rs.rows {
        let prefixes = get_str_list(&row[1]);
        if prefixes.is_empty() {
            continue;
        }
        domains += 1;
        if prefixes.iter().any(|p| covered.contains(p)) {
            domains_covered += 1;
        }
        all.extend(prefixes);
    }
    let prefix_covered = all.iter().filter(|p| covered.contains(*p)).count();
    NameserverRpki {
        ns_prefixes: all.len(),
        prefix_covered_pct: pct(prefix_covered, all.len()),
        domain_covered_pct: pct(domains_covered, domains),
    }
}

/// §5.1.2: prefix- vs domain-weighted RPKI coverage of web hosting.
#[derive(Debug, Clone, PartialEq)]
pub struct HostingConsolidation {
    /// % of distinct hosting prefixes covered (Table 2's 52.2%).
    pub prefix_covered_pct: f64,
    /// % of domains on covered prefixes (paper: 78.8%).
    pub domain_covered_pct: f64,
    /// % of CDN-hosted domains on covered prefixes (paper: 96%).
    pub cdn_domain_covered_pct: f64,
}

/// Computes the §5.1.2 consolidation numbers.
pub fn hosting_consolidation(graph: &Graph) -> HostingConsolidation {
    let covered = rpki_covered_set(graph);
    let cdn: HashSet<String> = run(graph, Q_CDN_PREFIXES)
        .rows
        .iter()
        .filter_map(|row| get_str(&row[0]))
        .collect();

    let rs = run(graph, Q_DOMAIN_WEB_PREFIXES);
    let mut all: HashSet<String> = HashSet::new();
    let mut domains = 0usize;
    let mut domains_covered = 0usize;
    let mut cdn_domains = 0usize;
    let mut cdn_domains_covered = 0usize;
    let mut domain_prefix_count: HashMap<String, usize> = HashMap::new();
    for row in &rs.rows {
        let Some(domain) = get_str(&row[0]) else {
            continue;
        };
        let prefixes = get_str_list(&row[1]);
        if prefixes.is_empty() {
            continue;
        }
        domains += 1;
        domain_prefix_count.insert(domain, prefixes.len());
        let any_covered = prefixes.iter().any(|p| covered.contains(p));
        if any_covered {
            domains_covered += 1;
        }
        let on_cdn = prefixes.iter().any(|p| cdn.contains(p));
        if on_cdn {
            cdn_domains += 1;
            if prefixes
                .iter()
                .any(|p| cdn.contains(p) && covered.contains(p))
            {
                cdn_domains_covered += 1;
            }
        }
        all.extend(prefixes);
    }
    let prefix_covered = all.iter().filter(|p| covered.contains(*p)).count();
    HostingConsolidation {
        prefix_covered_pct: pct(prefix_covered, all.len()),
        domain_covered_pct: pct(domains_covered, domains),
        cdn_domain_covered_pct: pct(cdn_domains_covered, cdn_domains),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_pipeline::{build_graph, BuildOptions};
    use iyp_simnet::{SimConfig, World};

    fn graph() -> Graph {
        let world = World::generate(&SimConfig::small(), 42);
        build_graph(&world, &BuildOptions::default()).unwrap().0
    }

    #[test]
    fn nameserver_rpki_shape() {
        let g = graph();
        let r = nameserver_rpki(&g);
        assert!(r.ns_prefixes > 10);
        // Concentration: domain-weighted coverage far exceeds
        // prefix-weighted (paper: 84% vs 48%).
        assert!(
            r.domain_covered_pct > r.prefix_covered_pct,
            "domain {} prefix {}",
            r.domain_covered_pct,
            r.prefix_covered_pct
        );
    }

    #[test]
    fn hosting_consolidation_shape() {
        let g = graph();
        let r = hosting_consolidation(&g);
        // Paper: 78.8% of domains vs 52.2% of prefixes; 96% for CDN.
        assert!(
            r.domain_covered_pct > r.prefix_covered_pct,
            "domain {} prefix {}",
            r.domain_covered_pct,
            r.prefix_covered_pct
        );
        assert!(
            r.cdn_domain_covered_pct >= r.domain_covered_pct,
            "cdn {} all {}",
            r.cdn_domain_covered_pct,
            r.domain_covered_pct
        );
    }
}
