//! The paper's studies, reproduced on the IYP knowledge graph.
//!
//! Following the paper's methodology (§4): each key result is obtained
//! with one or two short Cypher queries, plus a few lines of Rust
//! aggregation (standing in for the notebooks' Python). The query
//! strings are public constants so examples and documentation can show
//! them verbatim, like the paper's listings.
//!
//! | Module | Paper content |
//! |---|---|
//! | [`ripki`] | §4.1, Table 2 — RPKI deployment for popular domains, plus the §4.1.4 per-tag breakdown |
//! | [`dns_robustness`] | §4.2, Tables 3–5 — DNS best practices and shared infrastructure |
//! | [`insights`] | §5.1 — RPKI for nameservers; hosting consolidation |
//! | [`spof`] | §5.2, Figures 5–6 — single points of failure in the DNS chain |
//! | [`compare`] | §6.1 — cross-dataset comparison (the BGPKIT IPv6 bug) |
//! | [`longitudinal`] | §7's follow-up: the multi-snapshot workflow |
//! | [`topology`] | conclusion's follow-up: graph analytics (PageRank vs ASRank) |

pub mod compare;
pub mod dns_robustness;
pub mod insights;
pub mod longitudinal;
pub mod ripki;
pub mod spof;
pub mod topology;
pub mod util;

pub use compare::{find_origin_disagreements, OriginDisagreement};
pub use dns_robustness::{
    best_practices, shared_infrastructure, BestPractices, GroupingStats, SharedInfra,
};
pub use insights::{hosting_consolidation, nameserver_rpki, HostingConsolidation, NameserverRpki};
pub use longitudinal::{analyze_series, EpochStats, SnapshotSeries};
pub use ripki::{ripki_study, rpki_by_tag, RipkiResults, TagCoverage};
pub use spof::{spof_study, SpofKind, SpofResults};
pub use topology::{centrality_study, CentralityResults};
