//! Longitudinal analysis across IYP snapshots.
//!
//! §7 of the paper: *"We conducted a longitudinal study … by running
//! multiple IYP instances representing different snapshots in time …
//! A variant of IYP including temporal dynamics could be an
//! interesting follow up project."* This module implements that
//! follow-up workflow: build one knowledge graph per snapshot epoch,
//! run the same query against every instance, and merge the results —
//! exactly the fetch-and-merge loop the authors describe, automated.

use crate::util::{get_str, pct, run};
use iyp_graph::Graph;
use std::collections::HashSet;

/// Query: all RPKI-covered prefixes.
const Q_COVERED: &str = "
    MATCH (p:Prefix)-[:CATEGORIZED]-(t:Tag)
    WHERE t.label STARTS WITH 'RPKI'
    RETURN DISTINCT p.prefix";

/// Query: all announced prefixes.
const Q_ANNOUNCED: &str = "
    MATCH (:AS)-[:ORIGINATE]-(p:Prefix)
    RETURN DISTINCT p.prefix";

/// Query: all ranked domains.
const Q_DOMAINS: &str = "
    MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(d:DomainName)
    RETURN d.name";

/// Statistics for one snapshot epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch number.
    pub epoch: u32,
    /// % of announced prefixes covered by RPKI.
    pub rpki_covered_pct: f64,
    /// Ranked domains present.
    pub domains: usize,
    /// Fraction of the previous epoch's domains that disappeared (%),
    /// `None` for the first epoch.
    pub domain_churn_pct: Option<f64>,
}

/// A merged longitudinal series.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotSeries {
    /// Per-epoch statistics, in epoch order.
    pub epochs: Vec<EpochStats>,
}

impl SnapshotSeries {
    /// True if RPKI coverage never decreases across the series
    /// (the paper's observed long-term trend).
    pub fn rpki_trend_is_monotonic(&self) -> bool {
        self.epochs
            .windows(2)
            .all(|w| w[1].rpki_covered_pct >= w[0].rpki_covered_pct - 1e-9)
    }
}

/// Analyses a sequence of snapshot graphs (one per epoch, in order).
pub fn analyze_series(graphs: &[(u32, &Graph)]) -> SnapshotSeries {
    let mut epochs = Vec::with_capacity(graphs.len());
    let mut prev_domains: Option<HashSet<String>> = None;
    for (epoch, graph) in graphs {
        let covered: HashSet<String> = run(graph, Q_COVERED)
            .rows
            .iter()
            .filter_map(|r| get_str(&r[0]))
            .collect();
        let announced: HashSet<String> = run(graph, Q_ANNOUNCED)
            .rows
            .iter()
            .filter_map(|r| get_str(&r[0]))
            .collect();
        let domains: HashSet<String> = run(graph, Q_DOMAINS)
            .rows
            .iter()
            .filter_map(|r| get_str(&r[0]))
            .collect();
        let covered_announced = announced.iter().filter(|p| covered.contains(*p)).count();
        let churn = prev_domains.as_ref().map(|prev| {
            let gone = prev.iter().filter(|d| !domains.contains(*d)).count();
            pct(gone, prev.len())
        });
        epochs.push(EpochStats {
            epoch: *epoch,
            rpki_covered_pct: pct(covered_announced, announced.len()),
            domains: domains.len(),
            domain_churn_pct: churn,
        });
        prev_domains = Some(domains);
    }
    SnapshotSeries { epochs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_pipeline::{build_graph, BuildOptions};
    use iyp_simnet::{SimConfig, World};

    fn snapshot(epoch: u32) -> Graph {
        let config = SimConfig::tiny().at_epoch(epoch);
        let world = World::generate(&config, 42);
        build_graph(&world, &BuildOptions::default()).unwrap().0
    }

    #[test]
    fn rpki_coverage_grows_and_domains_churn() {
        let g0 = snapshot(0);
        let g2 = snapshot(2);
        let g4 = snapshot(4);
        let series = analyze_series(&[(0, &g0), (2, &g2), (4, &g4)]);
        assert_eq!(series.epochs.len(), 3);
        assert!(
            series.rpki_trend_is_monotonic(),
            "coverage went backwards: {:?}",
            series.epochs
        );
        assert!(
            series.epochs[2].rpki_covered_pct > series.epochs[0].rpki_covered_pct,
            "no growth: {:?}",
            series.epochs
        );
        // Churn is present but moderate.
        let churn = series.epochs[1].domain_churn_pct.unwrap();
        assert!(churn > 0.5 && churn < 30.0, "churn {churn}");
        assert!(series.epochs[0].domain_churn_pct.is_none());
    }

    #[test]
    fn same_epoch_has_no_churn() {
        let g0 = snapshot(0);
        let g0b = snapshot(0);
        let series = analyze_series(&[(0, &g0), (0, &g0b)]);
        assert_eq!(series.epochs[1].domain_churn_pct, Some(0.0));
    }
}
