//! RiPKI reproduction (§4.1, Table 2) and the per-tag extension
//! (§4.1.4).
//!
//! Methodology, following the paper: take the Tranco-ranked domains,
//! resolve them to IP addresses (OpenINTEL data), map the addresses to
//! routed prefixes (BGPKIT via the IP→Prefix refinement links), and
//! check each prefix's RPKI status (IHR ROV tags). Percentages are over
//! **distinct prefixes**, as in the original RiPKI study.

use crate::util::{get_int, get_str, get_str_list, pct, run};
use iyp_graph::Graph;
use std::collections::{HashMap, HashSet};

/// Query: ranked domains with the prefixes their hostnames resolve into
/// (the Listing 4 pattern, returning raw rows for aggregation).
pub const Q_DOMAIN_PREFIXES: &str = "
    MATCH (:Ranking {name:'Tranco top 1M'})-[r:RANK]-(d:DomainName)-[:PART_OF]-(h:HostName)\
          -[:RESOLVES_TO]-(:IP)-[:PART_OF]-(pfx:Prefix)
    RETURN d.name AS domain, min(r.rank) AS rank, collect(DISTINCT pfx.prefix) AS prefixes";

/// Query: the RPKI tag of every tagged prefix (IHR ROV).
pub const Q_PREFIX_RPKI: &str = "
    MATCH (pfx:Prefix)-[:CATEGORIZED]-(t:Tag)
    WHERE t.label STARTS WITH 'RPKI'
    RETURN DISTINCT pfx.prefix AS prefix, t.label AS tag";

/// Query: prefixes originated by ASes carrying a given classification
/// tag (BGP.Tools), used for the CDN column and the §4.1.4 sweep.
pub const Q_TAGGED_AS_PREFIXES: &str = "
    MATCH (t:Tag)-[:CATEGORIZED]-(a:AS)-[:ORIGINATE]-(pfx:Prefix)
    RETURN t.label AS tag, collect(DISTINCT pfx.prefix) AS prefixes";

/// Table 2 of the paper, computed on the knowledge graph.
#[derive(Debug, Clone, PartialEq)]
pub struct RipkiResults {
    /// Distinct prefixes serving Tranco domains.
    pub total_prefixes: usize,
    /// % of prefixes with an RPKI-invalid announcement.
    pub invalid_pct: f64,
    /// Of the invalids, % that are invalid due to max-length.
    pub invalid_maxlen_share: f64,
    /// % of prefixes covered by RPKI (valid or invalid).
    pub covered_pct: f64,
    /// % covered among prefixes of the top list decile.
    pub top_pct: f64,
    /// % covered among prefixes of the bottom list decile.
    pub bottom_pct: f64,
    /// % covered among CDN-originated prefixes serving the list.
    pub cdn_pct: f64,
}

/// The RPKI status map of all tagged prefixes: prefix → tag label.
fn rpki_tags(graph: &Graph) -> HashMap<String, String> {
    let rs = run(graph, Q_PREFIX_RPKI);
    let mut map = HashMap::new();
    for row in &rs.rows {
        if let (Some(p), Some(t)) = (get_str(&row[0]), get_str(&row[1])) {
            // Prefer the Invalid tag if a prefix somehow carries both.
            let e = map.entry(p).or_insert_with(String::new);
            if e.is_empty() || t.starts_with("RPKI Invalid") {
                *e = t;
            }
        }
    }
    map
}

fn covered_pct_of(prefixes: &HashSet<String>, tags: &HashMap<String, String>) -> f64 {
    let covered = prefixes.iter().filter(|p| tags.contains_key(*p)).count();
    pct(covered, prefixes.len())
}

/// Runs the RiPKI reproduction (Table 2).
pub fn ripki_study(graph: &Graph) -> RipkiResults {
    let tags = rpki_tags(graph);

    // Domain → (rank, prefixes).
    let rs = run(graph, Q_DOMAIN_PREFIXES);
    let mut all: HashSet<String> = HashSet::new();
    let mut top: HashSet<String> = HashSet::new();
    let mut bottom: HashSet<String> = HashSet::new();
    let mut max_rank = 0i64;
    let mut rows: Vec<(i64, Vec<String>)> = Vec::with_capacity(rs.rows.len());
    for row in &rs.rows {
        let rank = get_int(&row[1]).unwrap_or(0);
        max_rank = max_rank.max(rank);
        rows.push((rank, get_str_list(&row[2])));
    }
    // "Top/Bottom 100k" of a 1M list = the first and last deciles.
    let top_cut = max_rank / 10;
    let bottom_cut = max_rank - max_rank / 10;
    for (rank, prefixes) in rows {
        for p in prefixes {
            if rank <= top_cut {
                top.insert(p.clone());
            }
            if rank > bottom_cut {
                bottom.insert(p.clone());
            }
            all.insert(p);
        }
    }

    // Invalids within the studied prefixes.
    let invalid: Vec<&String> = all
        .iter()
        .filter(|p| tags.get(*p).is_some_and(|t| t.starts_with("RPKI Invalid")))
        .collect();
    let invalid_maxlen = invalid
        .iter()
        .filter(|p| tags.get(**p).is_some_and(|t| t.contains("more specific")))
        .count();

    // CDN prefixes serving the list.
    let rs = run(graph, Q_TAGGED_AS_PREFIXES);
    let mut cdn: HashSet<String> = HashSet::new();
    for row in &rs.rows {
        if get_str(&row[0]).as_deref() == Some("Content Delivery Network") {
            for p in get_str_list(&row[1]) {
                if all.contains(&p) {
                    cdn.insert(p);
                }
            }
        }
    }

    RipkiResults {
        total_prefixes: all.len(),
        invalid_pct: pct(invalid.len(), all.len()),
        invalid_maxlen_share: pct(invalid_maxlen, invalid.len()),
        covered_pct: covered_pct_of(&all, &tags),
        top_pct: covered_pct_of(&top, &tags),
        bottom_pct: covered_pct_of(&bottom, &tags),
        cdn_pct: covered_pct_of(&cdn, &tags),
    }
}

/// One row of the §4.1.4 per-tag RPKI deployment table.
#[derive(Debug, Clone, PartialEq)]
pub struct TagCoverage {
    /// The AS classification tag (BGP.Tools vocabulary).
    pub tag: String,
    /// Distinct prefixes originated by ASes with that tag.
    pub prefixes: usize,
    /// % of them covered by RPKI.
    pub covered_pct: f64,
}

/// RPKI deployment per AS classification tag (all announced prefixes,
/// not just those serving Tranco — as in the paper's discussion).
pub fn rpki_by_tag(graph: &Graph) -> Vec<TagCoverage> {
    let tags = rpki_tags(graph);
    let rs = run(graph, Q_TAGGED_AS_PREFIXES);
    let mut out = Vec::new();
    for row in &rs.rows {
        let Some(tag) = get_str(&row[0]) else {
            continue;
        };
        if tag.starts_with("RPKI") || tag.contains("Validating") || tag == "Anycast" {
            continue; // status tags, not classifications
        }
        let prefixes: HashSet<String> = get_str_list(&row[1]).into_iter().collect();
        if prefixes.is_empty() {
            continue;
        }
        out.push(TagCoverage {
            tag,
            prefixes: prefixes.len(),
            covered_pct: covered_pct_of(&prefixes, &tags),
        });
    }
    out.sort_by(|a, b| b.covered_pct.partial_cmp(&a.covered_pct).unwrap());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_pipeline::{build_graph, BuildOptions};
    use iyp_simnet::{SimConfig, World};

    fn graph() -> Graph {
        let world = World::generate(&SimConfig::small(), 42);
        build_graph(&world, &BuildOptions::default()).unwrap().0
    }

    #[test]
    fn table2_shape_holds() {
        let g = graph();
        let r = ripki_study(&g);
        assert!(
            r.total_prefixes > 50,
            "too few prefixes: {}",
            r.total_prefixes
        );
        // Invalids are rare (paper: 0.12%), coverage is around half
        // (paper: 52.2%), CDNs above average (paper: 68.4%), and the
        // bottom decile beats the top (paper: 61.5% vs 55.2%).
        assert!(r.invalid_pct < 5.0, "invalid {}", r.invalid_pct);
        assert!(
            r.covered_pct > 30.0 && r.covered_pct < 75.0,
            "covered {}",
            r.covered_pct
        );
        assert!(
            r.cdn_pct > r.covered_pct,
            "cdn {} vs {}",
            r.cdn_pct,
            r.covered_pct
        );
        assert!(
            r.bottom_pct > r.top_pct,
            "bottom {} top {}",
            r.bottom_pct,
            r.top_pct
        );
    }

    #[test]
    fn per_tag_ordering_matches_calibration() {
        let g = graph();
        let table = rpki_by_tag(&g);
        let find = |t: &str| table.iter().find(|x| x.tag == t).map(|x| x.covered_pct);
        let academic = find("Academic").expect("academic tag present");
        let ddos = find("DDoS Mitigation").expect("ddos tag present");
        let gov = find("Government").expect("government tag present");
        assert!(ddos > academic, "ddos {ddos} academic {academic}");
        assert!(ddos > gov);
        assert!(academic < 40.0 && gov < 45.0);
    }
}
