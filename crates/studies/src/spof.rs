//! SPoF in the DNS chain (§5.2, Figures 5 and 6).
//!
//! Extends the DNS robustness methodology beyond direct dependencies:
//! using the imported DNS dependency graph, every domain's *direct*,
//! *third-party* (outsourced DNS) and *hierarchical* (TLD) dependency
//! zones are resolved — zone → nameservers → addresses → BGP prefix →
//! origin AS → registration country — and domains are counted per
//! (country, kind) and (AS, kind).

use crate::util::{get_str, get_str_list, run, run_with};
use iyp_cypher::Params;
use iyp_graph::{Graph, Value};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Query: every DNS dependency edge (the UTwente dnsgraph import).
pub const Q_DEPENDENCY_EDGES: &str = "
    MATCH (d:DomainName)-[dep:DEPENDS_ON]->(z:DomainName)
    RETURN d.name AS domain, z.name AS zone, dep.kind AS kind";

/// Query: each zone's hosting ASes and their registration countries,
/// resolved through one precise dataset per hop (§6.1, "precise
/// queries": BGPKIT for origin, delegated files for country).
pub const Q_ZONE_HOSTING: &str = "
    MATCH (z:DomainName)-[:MANAGED_BY]-(:AuthoritativeNameServer)\
          -[:RESOLVES_TO]-(:IP)-[:PART_OF]-(:Prefix)\
          -[:ORIGINATE {reference_name:'bgpkit.pfx2as'}]-(a:AS)
    MATCH (a)-[:COUNTRY {reference_name:'nro.delegated_stats'}]-(c:Country)
    MATCH (a)-[:NAME {reference_name:'ripe.as_names'}]-(n:Name)
    RETURN z.name AS zone, collect(DISTINCT c.country_code) AS countries,
           collect(DISTINCT n.name) AS ases";

/// Query: members of a ranking (used to scope the study to Tranco or
/// Umbrella).
pub const Q_RANKED_DOMAINS: &str = "
    MATCH (r:Ranking {name: $ranking})-[:RANK]-(d:DomainName)
    RETURN d.name AS domain";

/// Dependency kinds, as in Figures 5 and 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpofKind {
    /// The domain's own delegation.
    Direct,
    /// Outsourced DNS operator zones.
    ThirdParty,
    /// The TLD registry.
    Hierarchical,
}

impl SpofKind {
    /// Parses the dnsgraph `kind` field.
    pub fn parse(s: &str) -> Option<SpofKind> {
        match s {
            "direct" => Some(SpofKind::Direct),
            "third-party" => Some(SpofKind::ThirdParty),
            "hierarchical" => Some(SpofKind::Hierarchical),
            _ => None,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SpofKind::Direct => "direct",
            SpofKind::ThirdParty => "third-party",
            SpofKind::Hierarchical => "hierarchical",
        }
    }
}

/// Results of the SPoF analysis for one domain population.
#[derive(Debug, Clone, Default)]
pub struct SpofResults {
    /// (country, kind) → number of dependent domains (Figure 5).
    pub by_country: BTreeMap<(String, SpofKind), usize>,
    /// (AS name, kind) → number of dependent domains (Figure 6).
    pub by_as: BTreeMap<(String, SpofKind), usize>,
    /// Number of domains analysed.
    pub domains: usize,
}

impl SpofResults {
    /// Top-`n` countries by total dependent domains, with per-kind
    /// counts (the Figure 5 bars).
    pub fn top_countries(&self, n: usize) -> Vec<(String, [usize; 3])> {
        top_of(&self.by_country, n)
    }

    /// Top-`n` ASes (Figure 6 bars).
    pub fn top_ases(&self, n: usize) -> Vec<(String, [usize; 3])> {
        top_of(&self.by_as, n)
    }
}

fn top_of(map: &BTreeMap<(String, SpofKind), usize>, n: usize) -> Vec<(String, [usize; 3])> {
    let mut totals: HashMap<&String, [usize; 3]> = HashMap::new();
    for ((key, kind), count) in map {
        let slot = match kind {
            SpofKind::Direct => 0,
            SpofKind::ThirdParty => 1,
            SpofKind::Hierarchical => 2,
        };
        totals.entry(key).or_default()[slot] += count;
    }
    let mut rows: Vec<(String, [usize; 3])> =
        totals.into_iter().map(|(k, v)| (k.clone(), v)).collect();
    rows.sort_by(|a, b| {
        let ta: usize = a.1.iter().sum();
        let tb: usize = b.1.iter().sum();
        tb.cmp(&ta).then(a.0.cmp(&b.0))
    });
    rows.truncate(n);
    rows
}

/// Runs the SPoF study for the domains of one ranking (`'Tranco top
/// 1M'` or `'Cisco Umbrella Top 1M'`).
pub fn spof_study(graph: &Graph, ranking: &str) -> SpofResults {
    // Population of interest.
    let mut params = Params::new();
    params.insert("ranking".into(), Value::Str(ranking.into()));
    let population: HashSet<String> = run_with(graph, Q_RANKED_DOMAINS, &params)
        .rows
        .iter()
        .filter_map(|row| get_str(&row[0]))
        .collect();

    // Zone → (countries, AS names).
    let rs = run(graph, Q_ZONE_HOSTING);
    let mut zone_hosting: HashMap<String, (Vec<String>, Vec<String>)> = HashMap::new();
    for row in &rs.rows {
        if let Some(zone) = get_str(&row[0]) {
            zone_hosting.insert(zone, (get_str_list(&row[1]), get_str_list(&row[2])));
        }
    }

    // Dependency edges joined against the population and hosting map.
    let rs = run(graph, Q_DEPENDENCY_EDGES);
    let mut results = SpofResults::default();
    let mut seen_domains: HashSet<String> = HashSet::new();
    // A domain counts once per (country/AS, kind) even when several of
    // its zones resolve there.
    let mut counted: HashSet<(String, String, SpofKind, bool)> = HashSet::new();
    for row in &rs.rows {
        let (Some(domain), Some(zone), Some(kind)) =
            (get_str(&row[0]), get_str(&row[1]), get_str(&row[2]))
        else {
            continue;
        };
        if !population.contains(&domain) {
            continue;
        }
        let Some(kind) = SpofKind::parse(&kind) else {
            continue;
        };
        let Some((countries, ases)) = zone_hosting.get(&zone) else {
            continue;
        };
        seen_domains.insert(domain.clone());
        for c in countries {
            if counted.insert((domain.clone(), c.clone(), kind, true)) {
                *results.by_country.entry((c.clone(), kind)).or_default() += 1;
            }
        }
        for a in ases {
            if counted.insert((domain.clone(), a.clone(), kind, false)) {
                *results.by_as.entry((a.clone(), kind)).or_default() += 1;
            }
        }
    }
    results.domains = seen_domains.len();
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_crawlers::{RANKING_TRANCO, RANKING_UMBRELLA};
    use iyp_pipeline::{build_graph, BuildOptions};
    use iyp_simnet::{SimConfig, World};

    fn graph() -> Graph {
        let world = World::generate(&SimConfig::small(), 42);
        build_graph(&world, &BuildOptions::default()).unwrap().0
    }

    #[test]
    fn figure5_shape_us_dominates_third_party() {
        let g = graph();
        let r = spof_study(&g, RANKING_TRANCO);
        assert!(r.domains > 100, "only {} domains analysed", r.domains);
        let top = r.top_countries(10);
        assert!(!top.is_empty());
        // The US must dominate third-party dependencies (the paper's
        // headline observation for Figure 5).
        let us = top.iter().find(|(c, _)| c == "US").expect("US present");
        let third_party_max = top.iter().map(|(_, v)| v[1]).max().unwrap();
        assert_eq!(
            us.1[1], third_party_max,
            "US not the top third-party dependency"
        );
        // Hierarchical dependencies exist for non-US countries (ccTLDs:
        // RU, CN, GB...).
        let non_us_hier: usize = r
            .by_country
            .iter()
            .filter(|((c, k), _)| c != "US" && *k == SpofKind::Hierarchical)
            .map(|(_, n)| n)
            .sum();
        assert!(non_us_hier > 0, "no ccTLD hierarchical dependencies");
    }

    #[test]
    fn figure6_shape_provider_roles_differ() {
        let g = graph();
        let r = spof_study(&g, RANKING_TRANCO);
        let top = r.top_ases(15);
        assert!(top.len() >= 3);
        // Some AS is mostly direct, and some AS has a meaningful
        // third-party role (the GoDaddy/Akamai contrast of Figure 6).
        let has_direct_heavy = top.iter().any(|(_, v)| v[0] > v[1] * 2 && v[0] > 0);
        let has_third_party = top.iter().any(|(_, v)| v[1] > 0);
        assert!(has_direct_heavy, "no direct-heavy provider");
        assert!(has_third_party, "no third-party provider");
    }

    #[test]
    fn umbrella_population_also_works() {
        let g = graph();
        let tranco = spof_study(&g, RANKING_TRANCO);
        let umbrella = spof_study(&g, RANKING_UMBRELLA);
        assert!(umbrella.domains > 0);
        assert!(umbrella.domains < tranco.domains);
    }

    #[test]
    fn kind_parsing() {
        assert_eq!(SpofKind::parse("direct"), Some(SpofKind::Direct));
        assert_eq!(SpofKind::parse("third-party"), Some(SpofKind::ThirdParty));
        assert_eq!(
            SpofKind::parse("hierarchical"),
            Some(SpofKind::Hierarchical)
        );
        assert_eq!(SpofKind::parse("nope"), None);
        assert_eq!(SpofKind::Direct.label(), "direct");
    }
}
