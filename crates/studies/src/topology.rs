//! Topology analytics: graph-algorithmic centrality cross-checked
//! against the imported rankings.
//!
//! The paper's conclusion lists knowledge-graph analytics (reasoning,
//! embeddings, recommendations) as the road ahead. This module is a
//! first concrete instance: compute PageRank centrality on the
//! `PEERS_WITH` mesh inside the knowledge graph and compare it with
//! CAIDA's customer-cone-based ASRank — two fully independent views of
//! AS importance that should, and do, largely agree at the top.

use crate::util::{get_int, run};
use iyp_graph::{algo, Graph, NodeId};
use std::collections::HashSet;

/// Query: ASes with their CAIDA rank.
const Q_ASRANK: &str = "
    MATCH (a:AS)-[r:RANK]-(:Ranking {name:'CAIDA ASRank'})
    RETURN a.asn AS asn, r.rank AS rank";

/// Result of the centrality cross-check.
#[derive(Debug, Clone)]
pub struct CentralityResults {
    /// Top ASNs by PageRank on the PEERS_WITH mesh, best first.
    pub top_pagerank: Vec<(u32, f64)>,
    /// Top ASNs by CAIDA ASRank (rank 1 first).
    pub top_asrank: Vec<u32>,
    /// Jaccard overlap of the two top-k sets.
    pub overlap: f64,
}

/// Runs PageRank over the AS peering mesh and compares the top `k`
/// against CAIDA ASRank.
pub fn centrality_study(graph: &Graph, k: usize) -> CentralityResults {
    // The AS universe and the PEERS_WITH mesh.
    let ases: Vec<NodeId> = graph.nodes_with_label("AS").collect();
    let peers = graph.symbols().get_rel_type("PEERS_WITH");
    let pr = algo::pagerank(graph, &ases, peers, 0.85, 40);

    let asn_of =
        |n: NodeId| -> Option<u32> { graph.node(n)?.prop("asn")?.as_int().map(|i| i as u32) };
    let top_pagerank: Vec<(u32, f64)> = pr
        .into_iter()
        .filter_map(|(n, s)| asn_of(n).map(|a| (a, s)))
        .take(k)
        .collect();

    // CAIDA's view.
    let rs = run(graph, Q_ASRANK);
    let mut ranked: Vec<(i64, u32)> = rs
        .rows
        .iter()
        .filter_map(|r| {
            let asn = get_int(&r[0])? as u32;
            let rank = get_int(&r[1])?;
            Some((rank, asn))
        })
        .collect();
    ranked.sort();
    let top_asrank: Vec<u32> = ranked.into_iter().map(|(_, a)| a).take(k).collect();

    let a: HashSet<u32> = top_pagerank.iter().map(|(x, _)| *x).collect();
    let b: HashSet<u32> = top_asrank.iter().copied().collect();
    let inter = a.intersection(&b).count();
    let union = a.union(&b).count();
    let overlap = if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    };

    CentralityResults {
        top_pagerank,
        top_asrank,
        overlap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_pipeline::{build_graph, BuildOptions};
    use iyp_simnet::{SimConfig, World};

    #[test]
    fn pagerank_agrees_with_asrank_at_the_top() {
        let world = World::generate(&SimConfig::small(), 42);
        let (graph, _) = build_graph(&world, &BuildOptions::default()).unwrap();
        let r = centrality_study(&graph, 15);
        assert_eq!(r.top_pagerank.len(), 15);
        assert_eq!(r.top_asrank.len(), 15);
        // Two independent importance measures over the same synthetic
        // topology must broadly agree at the top.
        assert!(r.overlap > 0.15, "overlap only {:.2}", r.overlap);
        // The single most PageRank-central AS should be a big transit
        // player: it must appear in ASRank's top quartile.
        let best = r.top_pagerank[0].0;
        let rank_of_best = {
            let rs = run(&graph, Q_ASRANK);
            rs.rows
                .iter()
                .find(|row| get_int(&row[0]) == Some(best as i64))
                .and_then(|row| get_int(&row[1]))
                .unwrap()
        };
        let total = world.ases.len() as i64;
        assert!(
            rank_of_best <= total / 4,
            "pagerank-best AS{best} has ASRank {rank_of_best}/{total}"
        );
    }
}
