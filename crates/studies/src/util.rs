//! Shared helpers for the studies.

use iyp_cypher::{query, Params, ResultSet, RtVal};
use iyp_graph::Graph;

/// Runs a query, panicking with the query text on error (studies are
/// library code over a graph we built; a failure is a programming bug).
pub fn run(graph: &Graph, q: &str) -> ResultSet {
    query(graph, q, &Params::new()).unwrap_or_else(|e| panic!("query failed: {e}\n{q}"))
}

/// Runs a query with parameters.
pub fn run_with(graph: &Graph, q: &str, params: &Params) -> ResultSet {
    query(graph, q, params).unwrap_or_else(|e| panic!("query failed: {e}\n{q}"))
}

/// Extracts a string column value.
pub fn get_str(v: &RtVal) -> Option<String> {
    v.as_scalar()?.as_str().map(String::from)
}

/// Extracts an integer column value.
pub fn get_int(v: &RtVal) -> Option<i64> {
    v.as_scalar()?.as_int()
}

/// Extracts a list-of-strings column value (from `collect(...)`).
pub fn get_str_list(v: &RtVal) -> Vec<String> {
    v.as_list()
        .map(|items| items.iter().filter_map(get_str).collect())
        .unwrap_or_default()
}

/// Percentage helper.
pub fn pct(part: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * part as f64 / total as f64
    }
}

/// Median of a slice of counts (0 for empty input).
pub fn median(values: &mut [usize]) -> usize {
    if values.is_empty() {
        return 0;
    }
    values.sort_unstable();
    values[values.len() / 2]
}

/// The TLD (last label) of a domain name.
pub fn tld_of(domain: &str) -> &str {
    domain.rsplit('.').next().unwrap_or(domain)
}

/// The registered (second-level) domain of a hostname.
pub fn registered_domain(host: &str) -> Option<String> {
    let labels: Vec<&str> = host.split('.').filter(|l| !l.is_empty()).collect();
    if labels.len() < 2 {
        return None;
    }
    Some(labels[labels.len() - 2..].join("."))
}

/// The /24 (or /64 for IPv6) aggregate of an IP address, as text — the
/// grouping unit of the original DNS robustness study.
pub fn slash24_of(ip: &str) -> Option<String> {
    let addr: std::net::IpAddr = ip.parse().ok()?;
    let p = match addr {
        std::net::IpAddr::V4(_) => iyp_netdata::Prefix::new(addr, 24).ok()?,
        std::net::IpAddr::V6(_) => iyp_netdata::Prefix::new(addr, 64).ok()?,
    };
    Some(p.canonical())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_and_median() {
        assert_eq!(pct(1, 4), 25.0);
        assert_eq!(pct(0, 0), 0.0);
        assert_eq!(median(&mut []), 0);
        assert_eq!(median(&mut [5]), 5);
        assert_eq!(median(&mut [3, 1, 2]), 2);
        assert_eq!(median(&mut [4, 1, 2, 3]), 3);
    }

    #[test]
    fn name_helpers() {
        assert_eq!(tld_of("a.b.com"), "com");
        assert_eq!(
            registered_domain("ns1.example.org"),
            Some("example.org".into())
        );
        assert_eq!(registered_domain("org"), None);
        assert_eq!(slash24_of("192.0.2.77"), Some("192.0.2.0/24".into()));
        assert_eq!(slash24_of("2001:db8::1"), Some("2001:db8::/64".into()));
        assert_eq!(slash24_of("garbage"), None);
    }
}
