//! iyp-telemetry: metrics and span timing for the IYP stack.
//!
//! A zero-dependency instrumentation layer shared by the graph store,
//! the Cypher executor, the build pipeline, and the server:
//!
//! - [`counter`] / [`gauge`] / [`histogram`] return cheap cloneable
//!   handles registered in a global, thread-safe recorder.
//! - [`span`] returns a drop guard that records elapsed wall time into
//!   a log-bucketed histogram.
//! - [`render`] emits a Prometheus-style text exposition of everything
//!   recorded so far.
//!
//! The recorder starts **disabled**: every handle checks one relaxed
//! atomic load and skips all work, so instrumented hot paths cost a
//! few cycles when telemetry is off (guarded by the
//! `telemetry_overhead` bench in `crates/bench`). Call [`enable`] to
//! start recording.
//!
//! Metric names follow Prometheus conventions; labels are encoded in
//! the name itself via [`labeled`], e.g.
//! `iyp_build_import_seconds{dataset="tranco_list"}`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Canonical metric names used across the IYP stack. Instrumented
/// crates reference these constants (never ad-hoc strings), and the
/// generated `documentation/telemetry.md` page renders [`names::ALL`],
/// so the docs cannot drift from the instrumentation.
pub mod names {
    /// Counter: Cypher queries started (any mode).
    pub const CYPHER_QUERIES_TOTAL: &str = "iyp_cypher_queries_total";
    /// Histogram: end-to-end Cypher query latency.
    pub const CYPHER_QUERY_SECONDS: &str = "iyp_cypher_query_seconds";
    /// Histogram: full pipeline build wall time.
    pub const BUILD_SECONDS: &str = "iyp_build_seconds";
    /// Histogram (per `dataset` label): one dataset's import time.
    pub const BUILD_IMPORT_SECONDS: &str = "iyp_build_import_seconds";
    /// Histogram (per `pass` label): one refinement pass's wall time.
    pub const BUILD_REFINE_SECONDS: &str = "iyp_build_refine_seconds";
    /// Counter: relationships created by crawler imports.
    pub const BUILD_LINKS_TOTAL: &str = "iyp_build_links_total";
    /// Gauge: node count of the most recently built graph.
    pub const GRAPH_NODES: &str = "iyp_graph_nodes";
    /// Gauge: relationship count of the most recently built graph.
    pub const GRAPH_RELS: &str = "iyp_graph_rels";
    /// Histogram: server-side query request latency.
    pub const SERVER_REQUEST_SECONDS: &str = "iyp_server_request_seconds";
    /// Counter: server queries slower than the slow-query threshold.
    pub const SERVER_SLOW_QUERIES_TOTAL: &str = "iyp_server_slow_queries_total";
    /// Counter: write queries executed by the server.
    pub const SERVER_WRITE_QUERIES_TOTAL: &str = "iyp_server_write_queries_total";
    /// Counter: Cypher write queries executed.
    pub const CYPHER_WRITE_QUERIES_TOTAL: &str = "iyp_cypher_write_queries_total";
    /// Counter: bytes appended to the write-ahead log.
    pub const JOURNAL_APPEND_BYTES_TOTAL: &str = "iyp_journal_append_bytes_total";
    /// Counter: fsync calls issued by the journal.
    pub const JOURNAL_FSYNCS_TOTAL: &str = "iyp_journal_fsyncs_total";
    /// Counter: graph ops replayed during crash recovery.
    pub const JOURNAL_REPLAYED_OPS_TOTAL: &str = "iyp_journal_replayed_ops_total";
    /// Counter: torn-tail bytes truncated from the WAL during recovery.
    pub const JOURNAL_TRUNCATED_BYTES_TOTAL: &str = "iyp_journal_truncated_bytes_total";
    /// Histogram: checkpoint (WAL compaction into a snapshot) wall time.
    pub const JOURNAL_CHECKPOINT_SECONDS: &str = "iyp_journal_checkpoint_seconds";
    /// Counter: work chunks dispatched to parallel Cypher worker threads.
    pub const CYPHER_PARALLEL_CHUNKS_TOTAL: &str = "iyp_cypher_parallel_chunks_total";
    /// Histogram: wall time spent inside parallel Cypher workers.
    pub const CYPHER_WORKER_SECONDS: &str = "iyp_cypher_worker_seconds";
    /// Counter: structural group/DISTINCT keys hashed during projection.
    pub const CYPHER_GROUP_KEYS_TOTAL: &str = "iyp_cypher_group_keys_total";
    /// Counter: connections rejected because the in-flight handler cap
    /// was reached.
    pub const SERVER_BUSY_REJECTED_TOTAL: &str = "iyp_server_busy_rejected_total";
    /// Counter: queries cancelled for exceeding the server deadline.
    pub const SERVER_QUERY_TIMEOUT_TOTAL: &str = "iyp_server_query_timeout_total";
    /// Counter: malformed records skipped by importer quarantine.
    pub const BUILD_QUARANTINED_RECORDS_TOTAL: &str = "iyp_build_quarantined_records_total";
    /// Counter: dataset fetch retries after transient failures.
    pub const BUILD_RETRIES_TOTAL: &str = "iyp_build_retries_total";
    /// Counter: datasets that failed or were skipped during a build.
    pub const BUILD_FAILED_DATASETS_TOTAL: &str = "iyp_build_failed_datasets_total";
    /// Counter: query-cache lookups answered from a cached result.
    pub const CYPHER_CACHE_HITS_TOTAL: &str = "iyp_cypher_cache_hits_total";
    /// Counter: query-cache lookups that fell through to execution.
    pub const CYPHER_CACHE_MISSES_TOTAL: &str = "iyp_cypher_cache_misses_total";
    /// Counter: cached results evicted to stay under the byte budget.
    pub const CYPHER_CACHE_EVICTIONS_TOTAL: &str = "iyp_cypher_cache_evictions_total";
    /// Gauge: bytes currently held by the query result cache.
    pub const CYPHER_CACHE_BYTES: &str = "iyp_cypher_cache_bytes";

    /// Every canonical metric as `(name, kind, labels, description)` —
    /// the source of truth for `documentation/telemetry.md`.
    pub const ALL: [(&str, &str, &str, &str); 29] = [
        (
            CYPHER_QUERIES_TOTAL,
            "counter",
            "",
            "Cypher queries started (any mode)",
        ),
        (
            CYPHER_QUERY_SECONDS,
            "histogram",
            "",
            "end-to-end Cypher query latency",
        ),
        (
            BUILD_SECONDS,
            "histogram",
            "",
            "full pipeline build wall time",
        ),
        (
            BUILD_IMPORT_SECONDS,
            "histogram",
            "dataset",
            "per-dataset import time",
        ),
        (
            BUILD_REFINE_SECONDS,
            "histogram",
            "pass",
            "per-refinement-pass wall time",
        ),
        (
            BUILD_LINKS_TOTAL,
            "counter",
            "",
            "relationships created by crawler imports",
        ),
        (
            GRAPH_NODES,
            "gauge",
            "",
            "node count of the most recently built graph",
        ),
        (
            GRAPH_RELS,
            "gauge",
            "",
            "relationship count of the most recently built graph",
        ),
        (
            SERVER_REQUEST_SECONDS,
            "histogram",
            "",
            "server-side query request latency",
        ),
        (
            SERVER_SLOW_QUERIES_TOTAL,
            "counter",
            "",
            "server queries slower than 250 ms",
        ),
        (
            SERVER_WRITE_QUERIES_TOTAL,
            "counter",
            "",
            "write queries executed by the server",
        ),
        (
            CYPHER_WRITE_QUERIES_TOTAL,
            "counter",
            "",
            "Cypher write queries executed",
        ),
        (
            JOURNAL_APPEND_BYTES_TOTAL,
            "counter",
            "",
            "bytes appended to the write-ahead log",
        ),
        (
            JOURNAL_FSYNCS_TOTAL,
            "counter",
            "",
            "fsync calls issued by the journal",
        ),
        (
            JOURNAL_REPLAYED_OPS_TOTAL,
            "counter",
            "",
            "graph ops replayed during crash recovery",
        ),
        (
            JOURNAL_TRUNCATED_BYTES_TOTAL,
            "counter",
            "",
            "torn-tail bytes truncated from the WAL during recovery",
        ),
        (
            JOURNAL_CHECKPOINT_SECONDS,
            "histogram",
            "",
            "checkpoint (WAL compaction into a snapshot) wall time",
        ),
        (
            CYPHER_PARALLEL_CHUNKS_TOTAL,
            "counter",
            "",
            "work chunks dispatched to parallel Cypher worker threads",
        ),
        (
            CYPHER_WORKER_SECONDS,
            "histogram",
            "",
            "wall time spent inside parallel Cypher workers",
        ),
        (
            CYPHER_GROUP_KEYS_TOTAL,
            "counter",
            "",
            "structural group/DISTINCT keys hashed during projection",
        ),
        (
            SERVER_BUSY_REJECTED_TOTAL,
            "counter",
            "",
            "connections rejected because the in-flight handler cap was reached",
        ),
        (
            SERVER_QUERY_TIMEOUT_TOTAL,
            "counter",
            "",
            "queries cancelled for exceeding the server deadline",
        ),
        (
            BUILD_QUARANTINED_RECORDS_TOTAL,
            "counter",
            "",
            "malformed records skipped by importer quarantine",
        ),
        (
            BUILD_RETRIES_TOTAL,
            "counter",
            "",
            "dataset fetch retries after transient failures",
        ),
        (
            BUILD_FAILED_DATASETS_TOTAL,
            "counter",
            "",
            "datasets that failed or were skipped during a build",
        ),
        (
            CYPHER_CACHE_HITS_TOTAL,
            "counter",
            "",
            "query-cache lookups answered from a cached result",
        ),
        (
            CYPHER_CACHE_MISSES_TOTAL,
            "counter",
            "",
            "query-cache lookups that fell through to execution",
        ),
        (
            CYPHER_CACHE_EVICTIONS_TOTAL,
            "counter",
            "",
            "cached results evicted to stay under the byte budget",
        ),
        (
            CYPHER_CACHE_BYTES,
            "gauge",
            "",
            "bytes currently held by the query result cache",
        ),
    ];
}

/// Number of log2 buckets in a histogram: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` nanoseconds, which spans 1 ns to ~584 years.
const BUCKETS: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Option<BTreeMap<String, Metric>>> = Mutex::new(None);

/// Turns recording on.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns recording off. Existing handles become no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// True when the recorder is on. One relaxed load; safe in hot paths.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every registered metric (the handles stay valid).
pub fn reset() {
    if let Some(reg) = registry().as_ref() {
        for metric in reg.values() {
            metric.reset();
        }
    }
}

/// Encodes labels into a metric name: `labeled("x", &[("k", "v")])`
/// yields `x{k="v"}`.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{}{{{}}}", name, body.join(","))
}

fn registry() -> MutexGuard<'static, Option<BTreeMap<String, Metric>>> {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    if guard.is_none() {
        *guard = Some(BTreeMap::new());
    }
    guard
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn reset(&self) {
        match self {
            Metric::Counter(c) => c.value.store(0, Ordering::Relaxed),
            Metric::Gauge(g) => g.value.store(0, Ordering::Relaxed),
            Metric::Histogram(h) => {
                h.inner.count.store(0, Ordering::Relaxed);
                h.inner.sum_ns.store(0, Ordering::Relaxed);
                for b in h.inner.buckets.iter() {
                    b.store(0, Ordering::Relaxed);
                }
            }
        }
    }
}

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`. No-op while the recorder is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can move up and down.
#[derive(Clone)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the gauge. No-op while the recorder is disabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds a (possibly negative) delta. No-op while disabled.
    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

/// A log2-bucketed latency histogram over nanosecond samples.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Records one duration. No-op while the recorder is disabled.
    #[inline]
    pub fn record(&self, d: Duration) {
        if enabled() {
            self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    fn record_ns(&self, ns: u64) {
        let bucket = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.inner.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.inner.sum_ns.load(Ordering::Relaxed))
    }

    /// Mean sample, or zero when empty.
    pub fn mean(&self) -> Duration {
        let sum = self.inner.sum_ns.load(Ordering::Relaxed);
        match sum.checked_div(self.count()) {
            Some(ns) => Duration::from_nanos(ns),
            None => Duration::ZERO,
        }
    }
}

/// Returns (registering on first use) the counter with this name.
pub fn counter(name: &str) -> Counter {
    let mut reg = registry();
    let map = reg.as_mut().unwrap();
    match map.get(name) {
        Some(Metric::Counter(c)) => c.clone(),
        Some(_) => panic!("metric `{}` already registered with another type", name),
        None => {
            let c = Counter {
                value: Arc::new(AtomicU64::new(0)),
            };
            map.insert(name.to_string(), Metric::Counter(c.clone()));
            c
        }
    }
}

/// Returns (registering on first use) the gauge with this name.
pub fn gauge(name: &str) -> Gauge {
    let mut reg = registry();
    let map = reg.as_mut().unwrap();
    match map.get(name) {
        Some(Metric::Gauge(g)) => g.clone(),
        Some(_) => panic!("metric `{}` already registered with another type", name),
        None => {
            let g = Gauge {
                value: Arc::new(AtomicI64::new(0)),
            };
            map.insert(name.to_string(), Metric::Gauge(g.clone()));
            g
        }
    }
}

/// Returns (registering on first use) the histogram with this name.
pub fn histogram(name: &str) -> Histogram {
    let mut reg = registry();
    let map = reg.as_mut().unwrap();
    match map.get(name) {
        Some(Metric::Histogram(h)) => h.clone(),
        Some(_) => panic!("metric `{}` already registered with another type", name),
        None => {
            let h = Histogram {
                inner: Arc::new(HistogramInner {
                    buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                    count: AtomicU64::new(0),
                    sum_ns: AtomicU64::new(0),
                }),
            };
            map.insert(name.to_string(), Metric::Histogram(h.clone()));
            h
        }
    }
}

/// Drop guard that records elapsed wall time into a histogram.
///
/// While the recorder is disabled, [`span`] takes no timestamp and the
/// guard's drop does nothing.
pub struct Span {
    target: Option<(Histogram, Instant)>,
}

impl Span {
    /// Elapsed time so far (zero while disabled).
    pub fn elapsed(&self) -> Duration {
        self.target
            .as_ref()
            .map(|(_, start)| start.elapsed())
            .unwrap_or(Duration::ZERO)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.target.take() {
            hist.record(start.elapsed());
        }
    }
}

/// Starts a span recording into the named histogram when dropped.
pub fn span(name: &str) -> Span {
    if !enabled() {
        return Span { target: None };
    }
    Span {
        target: Some((histogram(name), Instant::now())),
    }
}

/// A point-in-time reading of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram reading: sample count and sum of samples.
    Histogram {
        /// Number of samples.
        count: u64,
        /// Sum of all samples.
        sum: Duration,
    },
}

/// Snapshots every registered metric, sorted by name.
pub fn snapshot() -> Vec<(String, MetricValue)> {
    let reg = registry();
    let map = reg.as_ref().unwrap();
    map.iter()
        .map(|(name, metric)| {
            let value = match metric {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                Metric::Histogram(h) => MetricValue::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                },
            };
            (name.clone(), value)
        })
        .collect()
}

/// Renders all metrics in Prometheus text exposition format.
///
/// Histograms emit cumulative `_bucket{le="..."}` lines (upper bounds
/// in seconds), plus `_sum` (seconds) and `_count`.
pub fn render() -> String {
    let reg = registry();
    let map = reg.as_ref().unwrap();
    let mut out = String::new();
    for (name, metric) in map.iter() {
        let (base, labels) = split_labels(name);
        match metric {
            Metric::Counter(c) => {
                out.push_str(&format!("# TYPE {} counter\n", base));
                out.push_str(&format!("{} {}\n", name, c.get()));
            }
            Metric::Gauge(g) => {
                out.push_str(&format!("# TYPE {} gauge\n", base));
                out.push_str(&format!("{} {}\n", name, g.get()));
            }
            Metric::Histogram(h) => {
                out.push_str(&format!("# TYPE {} histogram\n", base));
                let mut cumulative = 0u64;
                for (i, bucket) in h.inner.buckets.iter().enumerate() {
                    let n = bucket.load(Ordering::Relaxed);
                    if n == 0 {
                        continue;
                    }
                    cumulative += n;
                    let upper_ns = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
                    let le = upper_ns as f64 / 1e9;
                    out.push_str(&format!(
                        "{}_bucket{{{}le=\"{:e}\"}} {}\n",
                        base,
                        labels_prefix(labels),
                        le,
                        cumulative
                    ));
                }
                out.push_str(&format!(
                    "{}_bucket{{{}le=\"+Inf\"}} {}\n",
                    base,
                    labels_prefix(labels),
                    h.count()
                ));
                let sum_line = if labels.is_empty() {
                    format!("{}_sum {}\n", base, h.sum().as_secs_f64())
                } else {
                    format!("{}_sum{{{}}} {}\n", base, labels, h.sum().as_secs_f64())
                };
                out.push_str(&sum_line);
                let count_line = if labels.is_empty() {
                    format!("{}_count {}\n", base, h.count())
                } else {
                    format!("{}_count{{{}}} {}\n", base, labels, h.count())
                };
                out.push_str(&count_line);
            }
        }
    }
    out
}

/// Splits `name{a="b"}` into (`name`, `a="b"`); labels are empty when absent.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(open) => (&name[..open], name[open + 1..].trim_end_matches('}')),
        None => (name, ""),
    }
}

fn labels_prefix(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{},", labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All tests share one global recorder; serialise them.
    fn locked() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_is_noop() {
        let _g = locked();
        disable();
        reset();
        let c = counter("test_noop_total");
        c.incr();
        c.add(10);
        assert_eq!(c.get(), 0);
        let h = histogram("test_noop_seconds");
        h.record(Duration::from_millis(5));
        assert_eq!(h.count(), 0);
        let s = span("test_noop_span_seconds");
        assert_eq!(s.elapsed(), Duration::ZERO);
        drop(s);
        assert_eq!(histogram("test_noop_span_seconds").count(), 0);
    }

    #[test]
    fn counters_and_gauges_record_when_enabled() {
        let _g = locked();
        enable();
        reset();
        let c = counter("test_ops_total");
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = gauge("test_depth");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        disable();
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let _g = locked();
        enable();
        reset();
        let h = histogram("test_latency_seconds");
        h.record(Duration::from_nanos(3)); // bucket 1: [2,4)
        h.record(Duration::from_nanos(3));
        h.record(Duration::from_nanos(100)); // bucket 6: [64,128)
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), Duration::from_nanos(106));
        let text = render();
        assert!(text.contains("# TYPE test_latency_seconds histogram"));
        assert!(text.contains("test_latency_seconds_count 3"));
        // The +Inf bucket always matches the count.
        assert!(text.contains("le=\"+Inf\"} 3"));
        disable();
    }

    #[test]
    fn span_records_elapsed_time() {
        let _g = locked();
        enable();
        reset();
        {
            let _s = span("test_span_seconds");
            std::thread::sleep(Duration::from_millis(2));
        }
        let h = histogram("test_span_seconds");
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= Duration::from_millis(2));
        disable();
    }

    #[test]
    fn labeled_encodes_and_render_splits() {
        let _g = locked();
        enable();
        reset();
        let name = labeled("test_import_total", &[("dataset", "tranco_list")]);
        assert_eq!(name, "test_import_total{dataset=\"tranco_list\"}");
        counter(&name).add(3);
        let text = render();
        assert!(text.contains("# TYPE test_import_total counter"));
        assert!(text.contains("test_import_total{dataset=\"tranco_list\"} 3"));
        disable();
    }

    #[test]
    fn snapshot_lists_all_metrics_sorted() {
        let _g = locked();
        enable();
        reset();
        counter("test_snap_b_total").incr();
        gauge("test_snap_a").set(1);
        let snap = snapshot();
        let names: Vec<&str> = snap
            .iter()
            .map(|(n, _)| n.as_str())
            .filter(|n| n.starts_with("test_snap_"))
            .collect();
        assert_eq!(names, vec!["test_snap_a", "test_snap_b_total"]);
        disable();
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let _g = locked();
        enable();
        let c = counter("test_reset_total");
        c.add(9);
        reset();
        assert_eq!(c.get(), 0);
        c.incr();
        assert_eq!(c.get(), 1);
        disable();
    }
}
