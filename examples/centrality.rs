//! Graph analytics on the knowledge graph (the conclusion's
//! "knowledge-graph applications" direction): PageRank centrality on
//! the AS peering mesh, cross-checked against CAIDA ASRank.
//!
//! ```text
//! cargo run --release --example centrality
//! ```

use iyp::studies::centrality_study;
use iyp::{Iyp, SimConfig};

fn main() {
    let scale = std::env::var("IYP_SCALE").unwrap_or_else(|_| "small".into());
    let config = if scale == "default" {
        SimConfig::default()
    } else {
        SimConfig::small()
    };
    println!("Building IYP ({scale} scale)...");
    let iyp = Iyp::build(&config, 42).expect("build");

    let r = centrality_study(iyp.graph(), 15);
    println!("\n== PageRank on the PEERS_WITH mesh vs CAIDA ASRank ==");
    println!(
        "{:<6} {:>12} {:>6}   {:<10}",
        "rank", "pagerank", "ASN", "also in ASRank top-15?"
    );
    let asrank: std::collections::HashSet<u32> = r.top_asrank.iter().copied().collect();
    for (i, (asn, score)) in r.top_pagerank.iter().enumerate() {
        println!(
            "{:<6} {:>12.6} {:>6}   {}",
            i + 1,
            score,
            asn,
            if asrank.contains(asn) { "yes" } else { "no" }
        );
    }
    println!("\nJaccard overlap of the two top-15 sets: {:.2}", r.overlap);
    println!(
        "Two independent views of AS importance — customer cones (CAIDA)\n\
         and peering-mesh centrality (computed in the graph) — agree at\n\
         the top, the consistency check a knowledge graph makes cheap."
    );

    // Bonus: use the DEPENDS_ON (hegemony) view for the same question.
    let rs = iyp
        .query(
            "MATCH (:AS)-[d:DEPENDS_ON]->(hub:AS)
             RETURN hub.asn AS asn, count(d) AS dependents
             ORDER BY dependents DESC LIMIT 5",
        )
        .expect("hegemony query");
    println!("\n== Most depended-on ASes (IHR hegemony view) ==");
    print!("{}", rs.render(iyp.graph()));
}
