//! Dataset comparison (§6.1 of the paper): find where BGPKIT's
//! prefix-to-AS mapping disagrees with IHR's — the way the authors
//! discovered a real IPv6 bug in the upstream dataset.
//!
//! ```text
//! cargo run --release --example dataset_comparison
//! ```

use iyp::studies::find_origin_disagreements;
use iyp::{Iyp, SimConfig};

fn main() {
    println!("Building IYP...");
    let iyp = Iyp::build(&SimConfig::small(), 42).expect("build");

    println!("\nQuery (three lines, as promised by the paper):");
    println!("{}", iyp::studies::compare::Q_ORIGIN_DISAGREEMENT);

    let diffs = find_origin_disagreements(iyp.graph());
    println!(
        "== {} origin disagreements between bgpkit.pfx2as and ihr.rov ==",
        diffs.len()
    );
    for d in diffs.iter().take(15) {
        println!(
            "  {:<28} bgpkit says AS{:<8} ihr says AS{}",
            d.prefix, d.bgpkit_origin, d.ihr_origin
        );
    }
    if diffs.len() > 15 {
        println!("  ... and {} more", diffs.len() - 15);
    }
    let v6 = diffs.iter().filter(|d| d.prefix.contains(':')).count();
    println!(
        "\n{v6}/{} disagreements are IPv6 — matching the paper's finding of an \
         IPv6-only error in the upstream dataset.\nNext step per §2.3: report it \
         to the data provider, not patch it locally.",
        diffs.len()
    );
}
