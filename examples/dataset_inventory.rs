//! Dataset inventory (Tables 1 and 8 of the paper): the 46 datasets,
//! their providers, and what each contributed to the graph.
//!
//! ```text
//! cargo run --release --example dataset_inventory
//! ```

use iyp::simnet::datasets::ALL_DATASETS;
use iyp::{Iyp, SimConfig};

fn main() {
    println!("== Table 8: datasets integrated into IYP ==\n");
    println!(
        "{:<26} {:<36} {:<9}",
        "Organization", "Dataset", "Frequency"
    );
    println!("{}", "-".repeat(75));
    let mut orgs = std::collections::BTreeSet::new();
    for d in ALL_DATASETS {
        println!(
            "{:<26} {:<36} {:<9}",
            d.organization(),
            d.name(),
            d.frequency()
        );
        orgs.insert(d.organization());
    }
    println!(
        "\n{} datasets from {} organizations\n",
        ALL_DATASETS.len(),
        orgs.len()
    );

    println!("Building the graph to measure each dataset's contribution...");
    let iyp = Iyp::build(&SimConfig::small(), 42).expect("build");
    println!("\n== links contributed per dataset ==");
    for (name, links) in &iyp.report().datasets {
        println!("  {name:<36} {links:>9}");
    }
    println!("\n== refinement passes ==");
    for (pass, links) in &iyp.report().refinement {
        println!("  {pass:<36} {links:>9}");
    }
    println!(
        "\ntotal: {} nodes, {} relationships",
        iyp.report().stats.nodes,
        iyp.report().stats.rels
    );
}
