//! DNS Robustness reproduction (§4.2) — regenerates Tables 3, 4 and 5.
//!
//! ```text
//! IYP_SCALE=default cargo run --release --example dns_robustness
//! ```

use iyp::studies::{best_practices, shared_infrastructure};
use iyp::{Iyp, SimConfig};

fn main() {
    let scale = std::env::var("IYP_SCALE").unwrap_or_else(|_| "small".into());
    let config = if scale == "default" {
        SimConfig::default()
    } else {
        SimConfig::small()
    };
    println!("Building IYP ({scale} scale)...");
    let iyp = Iyp::build(&config, 42).expect("build");

    let bp = best_practices(iyp.graph());
    println!("\n== Table 3: DNS best practices (.com/.net/.org SLDs) ==");
    println!("                         paper 2009-2018   IYP paper 2024   this graph");
    println!(
        "Coverage com/net/org          56%               49%          {:5.1}%",
        bp.coverage_pct
    );
    println!(
        "Discarded SLDs                12-15%            10%          {:5.1}%",
        bp.discarded_pct
    );
    println!(
        "Meet NS requirements         ~39%               18%          {:5.1}%",
        bp.meet_pct
    );
    println!(
        "Exceed NS requirements       ~20%               67%          {:5.1}%",
        bp.exceed_pct
    );
    println!(
        "Not meet NS requirements      28%                4%          {:5.1}%",
        bp.not_meet_pct
    );
    println!(
        "In-zone glue                  69-73%            76%          {:5.1}%",
        bp.in_zone_glue_pct
    );

    let si = shared_infrastructure(iyp.graph());
    println!("\n== Table 4: shared infrastructure (.com/.net/.org) ==");
    println!("                         paper 2018      IYP paper 2024    this graph");
    println!(
        "Grouped by NS set       med 163 max 9k    med 9 max 6k     med {} max {}",
        si.cno_by_ns.median, si.cno_by_ns.max
    );
    println!(
        "Grouped by /24          med 3k  max 71k   med 3.9k max 114k med {} max {}",
        si.cno_by_slash24.median, si.cno_by_slash24.max
    );

    println!("\n== Table 5: extended with BGP prefixes and all TLDs ==");
    println!(
        "com/net/org by BGP prefix   (paper: med 4.1k max 114k)   med {} max {}",
        si.cno_by_prefix.median, si.cno_by_prefix.max
    );
    println!(
        "All Tranco by BGP prefix    (paper: med 6k   max 187k)   med {} max {}",
        si.all_by_prefix.median, si.all_by_prefix.max
    );
    println!(
        "All Tranco by NS set        (paper: med 15   max 25k)    med {} max {}",
        si.all_by_ns.median, si.all_by_ns.max
    );
    println!(
        "\n(groups: {} NS sets, {} /24 sets, {} prefix sets for com/net/org)",
        si.cno_by_ns.groups, si.cno_by_slash24.groups, si.cno_by_prefix.groups
    );
}
