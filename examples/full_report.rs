//! Regenerates every table and figure of the paper in one run and
//! prints a paper-vs-measured report (the source of `EXPERIMENTS.md`).
//!
//! ```text
//! IYP_SCALE=default cargo run --release --example full_report
//! ```

use iyp::crawlers::{RANKING_TRANCO, RANKING_UMBRELLA};
use iyp::studies::{
    best_practices, find_origin_disagreements, hosting_consolidation, nameserver_rpki, ripki_study,
    rpki_by_tag, shared_infrastructure, spof_study,
};
use iyp::{Iyp, SimConfig};
use std::time::Instant;

fn main() {
    let scale = std::env::var("IYP_SCALE").unwrap_or_else(|_| "default".into());
    let config = match scale.as_str() {
        "tiny" => SimConfig::tiny(),
        "small" => SimConfig::small(),
        _ => SimConfig::default(),
    };
    let seed = 42;
    eprintln!("building ({scale} scale, seed {seed})...");
    let t0 = Instant::now();
    let iyp = Iyp::build(&config, seed).expect("build");
    let build_time = t0.elapsed();
    let stats = &iyp.report().stats;
    println!("## Graph");
    println!("- scale: {scale}, seed {seed}");
    println!(
        "- {} nodes, {} relationships, {} datasets, built in {:.1}s, {} ontology violations",
        stats.nodes,
        stats.rels,
        iyp.report().datasets.len(),
        build_time.as_secs_f64(),
        iyp.report().violations
    );

    let t = Instant::now();
    let r = ripki_study(iyp.graph());
    println!(
        "\n## Table 2 — RiPKI ({} distinct prefixes, {:.2}s)",
        r.total_prefixes,
        t.elapsed().as_secs_f64()
    );
    println!("| metric | RiPKI 2015 | IYP paper 2024 | measured |");
    println!("|---|---|---|---|");
    println!("| RPKI Invalid | 0.09% | 0.12% | {:.2}% |", r.invalid_pct);
    println!("| RPKI covered | 6% | 52.2% | {:.1}% |", r.covered_pct);
    println!("| Top 100k | 4% | 55.2% | {:.1}% |", r.top_pct);
    println!("| Bottom 100k | 5.5% | 61.5% | {:.1}% |", r.bottom_pct);
    println!("| CDN | 0.9% | 68.4% | {:.1}% |", r.cdn_pct);
    println!(
        "| invalids due to max-length | — | 75% | {:.0}% |",
        r.invalid_maxlen_share
    );

    println!("\n## §4.1.4 — RPKI by AS tag (paper: DDoS 76, Gov 21, Academic 16)");
    println!("| tag | prefixes | covered |");
    println!("|---|---|---|");
    for row in rpki_by_tag(iyp.graph()) {
        println!(
            "| {} | {} | {:.1}% |",
            row.tag, row.prefixes, row.covered_pct
        );
    }

    let t = Instant::now();
    let bp = best_practices(iyp.graph());
    println!(
        "\n## Table 3 — DNS best practices ({:.2}s)",
        t.elapsed().as_secs_f64()
    );
    println!("| metric | paper 2009-2018 | IYP paper 2024 | measured |");
    println!("|---|---|---|---|");
    println!(
        "| coverage com/net/org | 56% | 49% | {:.1}% |",
        bp.coverage_pct
    );
    println!(
        "| discarded SLDs | 12-15% | 10% | {:.1}% |",
        bp.discarded_pct
    );
    println!("| meet NS req. | ~39% | 18% | {:.1}% |", bp.meet_pct);
    println!("| exceed NS req. | ~20% | 67% | {:.1}% |", bp.exceed_pct);
    println!("| not meet NS req. | 28% | 4% | {:.1}% |", bp.not_meet_pct);
    println!(
        "| in-zone glue | 69-73% | 76% | {:.1}% |",
        bp.in_zone_glue_pct
    );

    let t = Instant::now();
    let si = shared_infrastructure(iyp.graph());
    println!(
        "\n## Tables 4 & 5 — shared infrastructure ({:.2}s)",
        t.elapsed().as_secs_f64()
    );
    println!("| grouping | paper 2018 | IYP paper 2024 | measured |");
    println!("|---|---|---|---|");
    println!(
        "| com/net/org by NS set | med 163, max 9k | med 9, max 6k | med {}, max {} |",
        si.cno_by_ns.median, si.cno_by_ns.max
    );
    println!(
        "| com/net/org by /24 | med 3k, max 71k | med 3.9k, max 114k | med {}, max {} |",
        si.cno_by_slash24.median, si.cno_by_slash24.max
    );
    println!(
        "| com/net/org by BGP prefix | — | med 4.1k, max 114k | med {}, max {} |",
        si.cno_by_prefix.median, si.cno_by_prefix.max
    );
    println!(
        "| all Tranco by BGP prefix | — | med 6k, max 187k | med {}, max {} |",
        si.all_by_prefix.median, si.all_by_prefix.max
    );
    println!(
        "| all Tranco by NS set | — | med 15, max 25k | med {}, max {} |",
        si.all_by_ns.median, si.all_by_ns.max
    );

    let t = Instant::now();
    let ns = nameserver_rpki(iyp.graph());
    let hc = hosting_consolidation(iyp.graph());
    println!(
        "\n## §5.1 — combined insights ({:.2}s)",
        t.elapsed().as_secs_f64()
    );
    println!("| metric | IYP paper 2024 | measured |");
    println!("|---|---|---|");
    println!(
        "| NS prefixes RPKI-covered | 48% | {:.1}% |",
        ns.prefix_covered_pct
    );
    println!(
        "| domains with covered NS | 84% | {:.1}% |",
        ns.domain_covered_pct
    );
    println!(
        "| hosting prefixes covered | 52.2% | {:.1}% |",
        hc.prefix_covered_pct
    );
    println!(
        "| domains on covered prefixes | 78.8% | {:.1}% |",
        hc.domain_covered_pct
    );
    println!(
        "| CDN-hosted domains covered | 96% | {:.1}% |",
        hc.cdn_domain_covered_pct
    );

    for (ranking, label) in [
        (RANKING_TRANCO, "Tranco"),
        (RANKING_UMBRELLA, "Cisco Umbrella"),
    ] {
        let t = Instant::now();
        let r = spof_study(iyp.graph(), ranking);
        println!(
            "\n## Figures 5 & 6 — SPoF, {label} panel ({} domains, {:.2}s)",
            r.domains,
            t.elapsed().as_secs_f64()
        );
        println!("| country | direct | third-party | hierarchical |");
        println!("|---|---|---|---|");
        for (cc, [d, tp, h]) in r.top_countries(8) {
            println!("| {cc} | {d} | {tp} | {h} |");
        }
        println!("\n| AS | direct | third-party | hierarchical |");
        println!("|---|---|---|---|");
        for (name, [d, tp, h]) in r.top_ases(8) {
            println!("| {name} | {d} | {tp} | {h} |");
        }
    }

    let diffs = find_origin_disagreements(iyp.graph());
    let v6 = diffs.iter().filter(|d| d.prefix.contains(':')).count();
    println!("\n## §6.1 — dataset comparison");
    println!(
        "- {} origin disagreements between bgpkit.pfx2as and ihr.rov, {v6} IPv6 \
         (paper: an IPv6-only upstream bug found this way)",
        diffs.len()
    );
}
