//! Generates the `documentation/` pages from the code — the ontology
//! tables (Tables 6 and 7 of the paper) and the data-source inventory
//! (Table 8), mirroring the real IYP repository's documentation layout.
//!
//! ```text
//! cargo run --release --example gen_docs
//! ```
//!
//! `tests/docs_in_sync.rs` regenerates these in memory and fails when
//! the committed pages drift from the code.

use iyp::docs;

fn main() {
    let dir = std::path::Path::new("documentation");
    std::fs::create_dir_all(dir).expect("mkdir documentation");
    for (file, content) in [
        ("node_types.md", docs::node_types_md()),
        ("relationship_types.md", docs::relationship_types_md()),
        ("data-sources.md", docs::data_sources_md()),
        ("telemetry.md", docs::telemetry_md()),
        ("durability.md", docs::durability_md()),
        ("query-engine.md", docs::query_engine_md()),
        ("query-cache.md", docs::query_cache_md()),
        ("fault-tolerance.md", docs::fault_tolerance_md()),
    ] {
        let path = dir.join(file);
        std::fs::write(&path, content).expect("write doc");
        println!("wrote {}", path.display());
    }
}
