//! The local-instance workflow (§3.1 + §6.1 of the paper): load a
//! snapshot, integrate confidential data with Cypher *write* queries,
//! tag the resources under study, and join private against public
//! knowledge.
//!
//! ```text
//! cargo run --release --example local_instance
//! ```

use iyp::{Iyp, SimConfig};

fn main() {
    // The "public instance" publishes a snapshot...
    let snapshot = std::env::temp_dir().join("iyp_public_snapshot.bin");
    {
        let public = Iyp::build(&SimConfig::small(), 42).expect("build");
        public.save_snapshot(&snapshot).expect("save");
        println!(
            "public snapshot: {} nodes, {} rels -> {}",
            public.graph().node_count(),
            public.graph().rel_count(),
            snapshot.display()
        );
    }

    // ...and an analyst loads it locally.
    let mut local = Iyp::load_snapshot(&snapshot).expect("load");

    // Step 1 (§6.1): tag the resources under study so later queries
    // stay short.
    let (_, s) = local
        .update(
            "MATCH (:Ranking {name: 'Tranco top 1M'})-[r:RANK]-(d:DomainName)
             WHERE r.rank <= 100
             MERGE (t:Tag {label: 'my study: top sites'})
             MERGE (d)-[:CATEGORIZED {reference_name: 'local.study'}]->(t)",
        )
        .expect("tagging");
    println!(
        "tagged: +{} nodes, +{} rels",
        s.nodes_created, s.rels_created
    );

    // Step 2: integrate confidential data — say, an internal list of
    // customer ASes — as ordinary write queries.
    let (_, s) = local
        .update(
            "UNWIND range(3300, 3900) AS asn
             MATCH (a:AS {asn: asn})
             MERGE (t:Tag {label: 'internal: customer'})
             MERGE (a)-[:CATEGORIZED {reference_name: 'internal.crm'}]->(t)",
        )
        .expect("confidential import");
    println!("confidential import: +{} rels", s.rels_created);

    // Step 3: join private knowledge against the public graph — which
    // of our customers originate prefixes that serve our studied sites?
    let rs = local
        .query(
            "MATCH (:Tag {label: 'internal: customer'})-[:CATEGORIZED]-(a:AS)
                   -[:ORIGINATE]-(:Prefix)-[:PART_OF]-(:IP)-[:RESOLVES_TO]-(:HostName)
                   -[:PART_OF]-(d:DomainName)-[:CATEGORIZED]-(:Tag {label: 'my study: top sites'})
             RETURN a.asn AS customer, count(DISTINCT d) AS studied_sites
             ORDER BY studied_sites DESC",
        )
        .expect("join query");
    println!("\ncustomer ASes serving studied sites:");
    print!("{}", rs.render(local.graph()));
    if rs.rows.is_empty() {
        println!("(none in this sample — rerun with IYP_SEED to explore)");
    }

    // Step 4: the enriched instance can be snapshotted again, locally.
    let enriched = std::env::temp_dir().join("iyp_local_enriched.bin");
    local.save_snapshot(&enriched).expect("save enriched");
    println!("\nenriched local snapshot -> {}", enriched.display());

    let _ = std::fs::remove_file(snapshot);
    let _ = std::fs::remove_file(enriched);
}
