//! Longitudinal analysis (§7 of the paper, implemented as a follow-up):
//! build one IYP instance per snapshot epoch and run the same queries
//! against every instance.
//!
//! ```text
//! cargo run --release --example longitudinal
//! ```

use iyp::studies::analyze_series;
use iyp::{BuildOptions, Iyp, SimConfig, World};

fn main() {
    let scale = std::env::var("IYP_SCALE").unwrap_or_else(|_| "small".into());
    let base = match scale.as_str() {
        "tiny" => SimConfig::tiny(),
        "default" => SimConfig::default(),
        _ => SimConfig::small(),
    };

    let epochs = [0u32, 1, 2, 3, 4];
    println!(
        "building {} snapshot instances ({scale} scale)...",
        epochs.len()
    );
    let mut instances = Vec::new();
    for &e in &epochs {
        let config = base.clone().at_epoch(e);
        let world = World::generate(&config, 42);
        let iyp = Iyp::build_from_world(&world, &BuildOptions::default()).expect("build");
        instances.push((e, iyp));
    }

    let graphs: Vec<(u32, &iyp::Graph)> = instances.iter().map(|(e, i)| (*e, i.graph())).collect();
    let series = analyze_series(&graphs);

    println!("\nepoch  RPKI coverage  domains   churn vs prev");
    for s in &series.epochs {
        println!(
            "{:>5}  {:>11.1}%  {:>7}   {}",
            s.epoch,
            s.rpki_covered_pct,
            s.domains,
            s.domain_churn_pct
                .map(|c| format!("{c:.1}%"))
                .unwrap_or_else(|| "-".into())
        );
    }
    println!(
        "\nRPKI trend monotonic: {} (the paper's observed long-term growth)",
        series.rpki_trend_is_monotonic()
    );
    println!(
        "This is the fetch-and-merge workflow §7 describes for running\n\
         longitudinal studies over multiple IYP instances."
    );
}
