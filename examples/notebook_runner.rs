//! Runs the shared query notebooks (§6.2 of the paper) against a fresh
//! IYP build, printing Markdown reports — the "weekly report" workflow:
//! same queries, refreshed data.
//!
//! ```text
//! cargo run --release --example notebook_runner [notebooks/ripki.cypher ...]
//! ```

use iyp::notebook::{parse_notebook, run_notebook};
use iyp::{Iyp, SimConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths: Vec<std::path::PathBuf> = if args.is_empty() {
        let mut v: Vec<_> = std::fs::read_dir("notebooks")
            .expect("notebooks/ directory")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "cypher"))
            .collect();
        v.sort();
        v
    } else {
        args.iter().map(Into::into).collect()
    };

    eprintln!("building IYP (small scale)...");
    let iyp = Iyp::build(&SimConfig::small(), 42).expect("build");

    for path in paths {
        let text = std::fs::read_to_string(&path).expect("read notebook");
        let nb = parse_notebook(&text);
        eprintln!("-- running {} ({} cells)", path.display(), nb.cells.len());
        match run_notebook(&iyp, &nb) {
            Ok(report) => println!("{report}"),
            Err(e) => eprintln!("notebook {} failed: {e}", path.display()),
        }
    }
}
