//! Quickstart: build an IYP knowledge graph and ask it questions.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Environment: `IYP_SCALE=small|default` (default: small),
//! `IYP_SEED=<u64>` (default: 42).

use iyp::{Iyp, SimConfig};

fn config() -> (SimConfig, u64) {
    let scale = std::env::var("IYP_SCALE").unwrap_or_else(|_| "small".into());
    let config = match scale.as_str() {
        "default" | "full" => SimConfig::default(),
        "tiny" => SimConfig::tiny(),
        _ => SimConfig::small(),
    };
    let seed = std::env::var("IYP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    (config, seed)
}

fn main() {
    let (config, seed) = config();
    println!("Building the Internet Yellow Pages (seed {seed})...");
    let iyp = Iyp::build(&config, seed).expect("build");
    println!("{}", iyp.report());

    // The ontology at a glance.
    println!("== ontology ==");
    println!(
        "{} entities, {} relationship types",
        iyp::ontology::entity::ALL_ENTITIES.len(),
        iyp::ontology::relationship::ALL_RELATIONSHIPS.len()
    );
    for e in iyp::ontology::entity::ALL_ENTITIES.iter().take(6) {
        println!(
            "  :{:<24} key={:<14} {}",
            e.label(),
            e.key_property(),
            e.description()
        );
    }
    println!("  ... (see documentation for the full tables)\n");

    // Listing 1 of the paper: ASes originating prefixes.
    let q = "MATCH (x:AS)-[:ORIGINATE]-(:Prefix) RETURN count(DISTINCT x.asn) AS originating";
    println!("== Listing 1: originating ASes ==\n{q}");
    let rs = iyp.query(q).expect("query");
    println!("-> {} ASes originate prefixes\n", rs.single_int().unwrap());

    // Listing 2: MOAS prefixes.
    let q = "MATCH (x:AS)-[:ORIGINATE]-(p:Prefix)-[:ORIGINATE]-(y:AS)
             WHERE x.asn <> y.asn
             RETURN count(DISTINCT p.prefix) AS moas";
    println!("== Listing 2: MOAS prefixes ==\n{q}");
    let rs = iyp.query(q).expect("query");
    println!(
        "-> {} prefixes with multiple origin ASes\n",
        rs.single_int().unwrap()
    );

    // A taste of multi-dataset navigation: popular domains hosted on
    // anycast prefixes.
    let q = "MATCH (:Ranking {name:'Tranco top 1M'})-[r:RANK]-(d:DomainName)-[:PART_OF]-(:HostName)
                   -[:RESOLVES_TO]-(:IP)-[:PART_OF]-(p:Prefix)-[:CATEGORIZED]-(:Tag {label:'Anycast'})
             RETURN count(DISTINCT d.name) AS anycast_domains";
    println!("== Cross-dataset: Tranco domains on anycast prefixes ==\n{q}");
    let rs = iyp.query(q).expect("query");
    println!(
        "-> {} domains served from anycast prefixes",
        rs.single_int().unwrap()
    );
}
