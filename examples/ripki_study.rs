//! RiPKI reproduction (§4.1 of the paper) — regenerates Table 2 and
//! the §4.1.4 per-tag RPKI deployment breakdown.
//!
//! ```text
//! IYP_SCALE=default cargo run --release --example ripki_study
//! ```

use iyp::studies::{ripki_study, rpki_by_tag};
use iyp::{Iyp, SimConfig};

fn main() {
    let scale = std::env::var("IYP_SCALE").unwrap_or_else(|_| "small".into());
    let config = if scale == "default" {
        SimConfig::default()
    } else {
        SimConfig::small()
    };
    println!("Building IYP ({scale} scale)...");
    let iyp = Iyp::build(&config, 42).expect("build");

    let r = ripki_study(iyp.graph());
    println!("\n== Table 2: RPKI status of prefixes serving Tranco domains ==");
    println!("                       RiPKI (2015)   IYP paper (2024)   this graph");
    println!(
        "RPKI Invalid              0.09%            0.12%          {:6.2}%",
        r.invalid_pct
    );
    println!(
        "RPKI covered              6%               52.2%          {:6.1}%",
        r.covered_pct
    );
    println!(
        "Top 100k                  4%               55.2%          {:6.1}%",
        r.top_pct
    );
    println!(
        "Bottom 100k               5.5%             61.5%          {:6.1}%",
        r.bottom_pct
    );
    println!(
        "CDN                       0.9%             68.4%          {:6.1}%",
        r.cdn_pct
    );
    println!(
        "\n{} distinct prefixes; {:.0}% of invalids due to max-length (paper: 75%)",
        r.total_prefixes, r.invalid_maxlen_share
    );

    println!("\n== §4.1.4: RPKI deployment per AS classification tag ==");
    println!("{:<28} {:>9} {:>10}", "tag", "prefixes", "covered");
    for row in rpki_by_tag(iyp.graph()) {
        println!(
            "{:<28} {:>9} {:>9.1}%",
            row.tag, row.prefixes, row.covered_pct
        );
    }
    println!("\n(paper: DDoS Mitigation 76%, Government 21%, Academic 16%)");
}
