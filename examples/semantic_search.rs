//! Semantic search (Figure 3 / Listings 1–3 of the paper).
//!
//! Demonstrates pattern-based search: no keywords, only ontology terms.
//!
//! ```text
//! cargo run --release --example semantic_search
//! ```

use iyp::{Iyp, SimConfig};

fn main() {
    let iyp = Iyp::build(&SimConfig::small(), 42).expect("build");

    // (1) All originating ASes — a pure structural pattern.
    let q1 = "
        // Select ASes originating prefixes
        MATCH (x:AS)-[:ORIGINATE]-(:Prefix)
        // Return the AS's ASN
        RETURN DISTINCT x.asn
        ORDER BY x.asn LIMIT 10";
    println!("== (1) originating ASes (first 10) ==\n{q1}");
    let rs = iyp.query(q1).expect("q1");
    for row in &rs.rows {
        println!("  AS{}", row[0].render(iyp.graph()));
    }

    // (2) MOAS prefixes.
    let q2 = "
        // Find Prefixes with two originating ASes
        MATCH (x:AS)-[:ORIGINATE]-(p:Prefix)-[:ORIGINATE]-(y:AS)
        // Make sure that the ASNs of the two ASes are different
        WHERE x.asn <> y.asn
        RETURN DISTINCT p.prefix";
    println!("\n== (2) MOAS prefixes ==\n{q2}");
    let rs = iyp.query(q2).expect("q2");
    println!(
        "  {} MOAS prefixes (expected: disagreeing datasets create them)",
        rs.rows.len()
    );
    for row in rs.rows.iter().take(5) {
        println!("  {}", row[0].render(iyp.graph()));
    }

    // (3) A branching pattern anchored at a specific node, Listing 3
    // style: popular hostnames in RPKI-valid space of one organisation.
    // Pick an organisation that actually originates RPKI-valid space.
    let org = iyp
        .query(
            "MATCH (org:Organization)-[:MANAGED_BY]-(:AS)-[:ORIGINATE]-(pfx:Prefix)\
                   -[:CATEGORIZED]-(:Tag {label:'RPKI Valid'})
             MATCH (pfx)-[:PART_OF]-(:IP)-[:RESOLVES_TO]-(:HostName)
             RETURN org.name LIMIT 1",
        )
        .expect("org lookup");
    let Some(org_name) = org.rows.first().map(|r| r[0].render(iyp.graph())) else {
        println!("\n== (3) no organisation with RPKI-valid hosted prefixes in this sample ==");
        return;
    };

    let q3 = format!(
        "
        // Find RPKI valid prefixes managed by {org_name}
        MATCH (org:Organization)-[:MANAGED_BY]-(:AS)-[:ORIGINATE]-(pfx:Prefix)-[:CATEGORIZED]-(:Tag {{label:'RPKI Valid'}})
        WHERE org.name = '{org_name}'
        // Find popular hostnames in these prefixes
        MATCH (pfx)-[:PART_OF]-(:IP)-[:RESOLVES_TO {{reference_name:'openintel.tranco1m'}}]-(h:HostName)
        RETURN distinct h.name LIMIT 10"
    );
    println!("\n== (3) Listing 3 anchored at '{org_name}' ==\n{q3}");
    let rs = iyp.query(&q3).expect("q3");
    for row in &rs.rows {
        println!("  {}", row[0].render(iyp.graph()));
    }
    println!("\n({} hostnames total)", rs.rows.len());
}
