//! Sneak peek (Figure 4 of the paper): walk the neighbourhood of one
//! popular domain across the underlying datasets.
//!
//! ```text
//! cargo run --release --example sneak_peek
//! ```

use iyp::{Iyp, RtVal, SimConfig};

fn one_string(rs: &iyp::ResultSet) -> Option<String> {
    rs.rows
        .first()
        .and_then(|r| r.first())
        .and_then(|v| match v {
            RtVal::Scalar(s) => s.as_str().map(String::from),
            _ => None,
        })
}

fn main() {
    let iyp = Iyp::build(&SimConfig::small(), 42).expect("build");

    // Start from the #1 Tranco domain (the paper starts from
    // nytimes.com).
    let domain = one_string(
        &iyp.query(
            "MATCH (:Ranking {name:'Tranco top 1M'})-[r:RANK {rank: 1}]-(d:DomainName)
             RETURN d.name",
        )
        .expect("rank 1"),
    )
    .expect("a rank-1 domain exists");
    println!("(:DomainName {{name: '{domain}'}})  — rank 1 in Tranco\n");

    // Branch 1: the web branch (PART_OF / RESOLVES_TO / ORIGINATE).
    let rs = iyp
        .query(&format!(
            "MATCH (d:DomainName {{name:'{domain}'}})-[:PART_OF]-(h:HostName)\
                   -[:RESOLVES_TO]-(i:IP)-[:PART_OF]-(p:Prefix)\
                   -[:ORIGINATE {{reference_name:'bgpkit.pfx2as'}}]-(a:AS)
             RETURN DISTINCT h.name, i.ip, p.prefix, a.asn"
        ))
        .expect("web branch");
    println!("-- web branch (hostname → IP → prefix → origin AS) --");
    for row in &rs.rows {
        println!(
            "  {} -RESOLVES_TO-> {} -PART_OF-> {} -ORIGINATE- AS{}",
            row[0].render(iyp.graph()),
            row[1].render(iyp.graph()),
            row[2].render(iyp.graph()),
            row[3].render(iyp.graph())
        );
    }

    // RPKI status of those prefixes.
    let rs = iyp
        .query(&format!(
            "MATCH (d:DomainName {{name:'{domain}'}})-[:PART_OF]-(:HostName)\
                   -[:RESOLVES_TO]-(:IP)-[:PART_OF]-(p:Prefix)-[:CATEGORIZED]-(t:Tag)
             RETURN DISTINCT p.prefix, t.label"
        ))
        .expect("tags");
    println!("\n-- prefix tags (IHR / BGP.Tools) --");
    for row in &rs.rows {
        println!(
            "  {} -CATEGORIZED-> (:Tag {{label:'{}'}})",
            row[0].render(iyp.graph()),
            row[1].render(iyp.graph())
        );
    }

    // Branch 2: the DNS branch (MANAGED_BY).
    let rs = iyp
        .query(&format!(
            "MATCH (d:DomainName {{name:'{domain}'}})-[:MANAGED_BY]-(ns:AuthoritativeNameServer)
             OPTIONAL MATCH (ns)-[:RESOLVES_TO]-(i:IP)
             RETURN ns.name, collect(DISTINCT i.ip)"
        ))
        .expect("dns branch");
    println!("\n-- DNS branch (authoritative nameservers) --");
    for row in &rs.rows {
        println!(
            "  -MANAGED_BY-> {}  resolves to {}",
            row[0].render(iyp.graph()),
            row[1].render(iyp.graph())
        );
    }

    // Branch 3: who queries this domain (Cloudflare radar).
    let rs = iyp
        .query(&format!(
            "MATCH (d:DomainName {{name:'{domain}'}})-[q:QUERIED_FROM]-(a:AS)
             RETURN a.asn, q.value ORDER BY q.value DESC"
        ))
        .expect("radar branch");
    println!("\n-- QUERIED_FROM branch (Cloudflare-radar-style) --");
    for row in &rs.rows {
        println!(
            "  AS{} queries it ({}% of resolver traffic)",
            row[0].render(iyp.graph()),
            row[1].render(iyp.graph())
        );
    }

    // Branch 4: Atlas measurements targeting its hostnames, if any.
    let rs = iyp
        .query(&format!(
            "MATCH (d:DomainName {{name:'{domain}'}})-[:PART_OF]-(h:HostName)\
                   -[:TARGET]-(m:AtlasMeasurement)
             RETURN m.id, h.name"
        ))
        .expect("atlas branch");
    println!("\n-- Atlas branch --");
    if rs.rows.is_empty() {
        println!("  (no measurement targets this domain in this sample)");
    }
    for row in &rs.rows {
        println!(
            "  (:AtlasMeasurement {{id:{}}}) -TARGET-> {}",
            row[0].render(iyp.graph()),
            row[1].render(iyp.graph())
        );
    }

    println!("\nEvery link above is annotated with its source dataset (reference_name).");
}
