//! SPoF in the DNS chain (§5.2) — regenerates Figures 5 and 6 as text
//! bar charts, plus the §5.1 combined insights.
//!
//! ```text
//! IYP_SCALE=default cargo run --release --example spof_analysis
//! ```

use iyp::crawlers::{RANKING_TRANCO, RANKING_UMBRELLA};
use iyp::studies::{hosting_consolidation, nameserver_rpki, spof_study};
use iyp::{Iyp, SimConfig};

fn bar(n: usize, total: usize) -> String {
    let width = (n * 40).checked_div(total).unwrap_or(0);
    "#".repeat(width.max(usize::from(n > 0)))
}

fn print_panel(title: &str, rows: &[(String, [usize; 3])], domains: usize) {
    println!(
        "\n-- {title} (top {}; {} domains analysed) --",
        rows.len(),
        domains
    );
    println!(
        "{:<28} {:>8} {:>12} {:>12}",
        "", "direct", "third-party", "hierarchical"
    );
    for (name, [d, t, h]) in rows {
        println!(
            "{name:<28} {d:>8} {t:>12} {h:>12}  {}",
            bar(d + t + h, domains * 3)
        );
    }
}

fn main() {
    let scale = std::env::var("IYP_SCALE").unwrap_or_else(|_| "small".into());
    let config = if scale == "default" {
        SimConfig::default()
    } else {
        SimConfig::small()
    };
    println!("Building IYP ({scale} scale)...");
    let iyp = Iyp::build(&config, 42).expect("build");

    println!("\n== §5.1.1: RPKI coverage of the DNS infrastructure ==");
    let ns = nameserver_rpki(iyp.graph());
    println!(
        "nameserver prefixes covered: {:.1}% of {} prefixes (paper: 48%)",
        ns.prefix_covered_pct, ns.ns_prefixes
    );
    println!(
        "domains with RPKI-covered nameservers: {:.1}% (paper: 84%)",
        ns.domain_covered_pct
    );

    println!("\n== §5.1.2: web hosting consolidation and RPKI ==");
    let hc = hosting_consolidation(iyp.graph());
    println!(
        "prefix-weighted coverage:  {:.1}% (paper: 52.2%)",
        hc.prefix_covered_pct
    );
    println!(
        "domain-weighted coverage:  {:.1}% (paper: 78.8%)",
        hc.domain_covered_pct
    );
    println!(
        "CDN-hosted domains:        {:.1}% (paper: 96%)",
        hc.cdn_domain_covered_pct
    );

    for (ranking, label) in [
        (RANKING_TRANCO, "Tranco"),
        (RANKING_UMBRELLA, "Cisco Umbrella"),
    ] {
        let r = spof_study(iyp.graph(), ranking);
        println!("\n==================== {label} top list ====================");
        print_panel(
            &format!("Figure 5: country-based SPoF ({label})"),
            &r.top_countries(10),
            r.domains,
        );
        print_panel(
            &format!("Figure 6: AS-based SPoF ({label})"),
            &r.top_ases(10),
            r.domains,
        );
    }
    println!("\n(paper: direct dependencies dominate; third-party concentrated on the US;");
    println!(" hierarchical dependencies on RU/CN/UK via ccTLD registries)");
}
