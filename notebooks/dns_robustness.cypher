// # DNS Robustness reproduction notebook (§4.2 of the paper)
// The data-extraction queries behind Tables 3-5 (aggregation happens
// client-side, as in the authors' Python notebooks).

// Listing 5 extraction: domains, their nameservers, and NS addresses.
MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(d:DomainName)-[:MANAGED_BY]-(a:AuthoritativeNameServer)
OPTIONAL MATCH (a)-[:RESOLVES_TO]-(i:IP {af:4})
RETURN count(DISTINCT d) AS domains, count(DISTINCT a.name) AS nameservers, count(DISTINCT i.ip) AS ns_addresses
====
// Listing 6: nameservers with their BGP prefixes (via the refinement
// IP -> Prefix links).
MATCH (a:AuthoritativeNameServer)-[:RESOLVES_TO]-(i:IP {af:4})-[:PART_OF]-(pfx:Prefix)
RETURN count(DISTINCT a.name) AS nameservers, count(DISTINCT pfx.prefix) AS bgp_prefixes
====
// Nameserver consolidation preview: the ten busiest nameservers.
MATCH (d:DomainName)-[:MANAGED_BY]-(a:AuthoritativeNameServer)
RETURN a.name AS nameserver, count(DISTINCT d) AS zones
ORDER BY zones DESC LIMIT 10
