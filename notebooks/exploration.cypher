// # Exploration notebook
// The paper's Figure 3 semantic searches plus a few cross-dataset
// explorations that showcase the knowledge graph.

// Listing 1: all ASes originating prefixes.
MATCH (x:AS)-[:ORIGINATE]-(:Prefix)
RETURN count(DISTINCT x.asn) AS originating_ases
====
// Listing 2: multiple-origin-AS prefixes.
MATCH (x:AS)-[:ORIGINATE]-(p:Prefix)-[:ORIGINATE]-(y:AS)
WHERE x.asn <> y.asn
RETURN count(DISTINCT p.prefix) AS moas_prefixes
====
// Where do the two prefix-to-AS datasets disagree? (§6.1)
MATCH (a1:AS)-[:ORIGINATE {reference_name:'bgpkit.pfx2as'}]-(p:Prefix)-[:ORIGINATE {reference_name:'ihr.rov'}]-(a2:AS)
WHERE a1.asn <> a2.asn
RETURN count(DISTINCT p.prefix) AS disagreements
====
// Anycast usage among popular domains.
MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(d:DomainName)-[:PART_OF]-(:HostName)-[:RESOLVES_TO]-(:IP)-[:PART_OF]-(:Prefix)-[:CATEGORIZED]-(:Tag {label:'Anycast'})
RETURN count(DISTINCT d.name) AS anycast_domains
====
// IXP membership: the best-connected ASes.
MATCH (a:AS)-[:MEMBER_OF]-(ix:IXP)
RETURN a.asn AS asn, count(DISTINCT ix.name) AS ixps
ORDER BY ixps DESC LIMIT 10
