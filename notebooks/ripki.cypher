// # RiPKI reproduction notebook (§4.1 of the paper)
// Queries mirroring the authors' published Jupyter notebook: run them
// against any IYP instance/snapshot to refresh the Table 2 results.
// One query per block; blocks are separated by a line of equals signs.

// Domains in the Tranco ranking with the prefixes their hostnames
// resolve into (the raw rows behind Table 2).
MATCH (:Ranking {name:'Tranco top 1M'})-[r:RANK]-(d:DomainName)-[:PART_OF]-(h:HostName)-[:RESOLVES_TO]-(:IP)-[:PART_OF]-(pfx:Prefix)
RETURN count(DISTINCT pfx.prefix) AS studied_prefixes
====
// Listing 4: RPKI-invalid prefixes serving Tranco domains.
MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(:DomainName)-[:PART_OF]-(:HostName)-[:RESOLVES_TO]-(:IP)-[:PART_OF]-(pfx:Prefix)-[:CATEGORIZED]-(t:Tag)
WHERE t.label STARTS WITH 'RPKI Invalid'
RETURN count(DISTINCT pfx) AS invalid_prefixes
====
// RPKI-covered prefixes serving Tranco domains.
MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(:DomainName)-[:PART_OF]-(:HostName)-[:RESOLVES_TO]-(:IP)-[:PART_OF]-(pfx:Prefix)-[:CATEGORIZED]-(t:Tag)
WHERE t.label STARTS WITH 'RPKI'
RETURN count(DISTINCT pfx) AS covered_prefixes
====
// CDN-originated prefixes and their RPKI coverage (§4.1.3's CDN row).
MATCH (:Tag {label:'Content Delivery Network'})-[:CATEGORIZED]-(:AS)-[:ORIGINATE]-(pfx:Prefix)
OPTIONAL MATCH (pfx)-[:CATEGORIZED]-(t:Tag {label:'RPKI Valid'})
RETURN count(DISTINCT pfx.prefix) AS cdn_prefixes, count(DISTINCT t) > 0 AS any_valid
