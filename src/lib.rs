//! Internet Yellow Pages (IYP) — a knowledge graph for the Internet.
//!
//! A from-scratch Rust reproduction of *"The Wisdom of the Measurement
//! Crowd: Building the Internet Yellow Pages, a Knowledge Graph for the
//! Internet"* (IMC 2024): a property-graph store, a Cypher query
//! engine, the IYP ontology, 46 dataset crawlers, a synthetic-Internet
//! substrate, and the paper's studies.
//!
//! This facade re-exports [`iyp_core`]; see the `examples/` directory
//! for runnable walk-throughs and `DESIGN.md`/`EXPERIMENTS.md` for the
//! per-experiment map.

pub use iyp_core::*;
