//! `iyp` — the Internet Yellow Pages command-line tool.
//!
//! Mirrors the workflows of §3.1/§6 of the paper:
//!
//! ```text
//! iyp build   [--scale tiny|small|default] [--seed N] [--out FILE] [--journal DIR] [--metrics]
//!             [--chaos SEED]
//! iyp query   [--snapshot FILE] [--threads N] '<cypher>'
//! iyp profile [--snapshot FILE] [--threads N] '<cypher>'
//! iyp shell   [--snapshot FILE]
//! iyp serve   [--snapshot FILE] [--addr HOST:PORT] [--threads N] [--max-conns N]
//!             [--query-timeout SECS] [--journal DIR] [--fsync always|never|every=N]
//! iyp recover --journal DIR [--out FILE]
//! iyp studies [--snapshot FILE]
//! iyp datasets
//! ```
//!
//! Without `--snapshot`, commands build a fresh small-scale graph.
//! With `--journal`, `serve` runs read-write: writes go through a
//! write-ahead log and survive crashes (see
//! `documentation/durability.md`). `--threads` caps the Cypher
//! engine's worker threads (also settable via `IYP_CYPHER_THREADS`;
//! see `documentation/query-engine.md`), and `--max-conns` bounds
//! in-flight server connections. `--query-timeout` cancels read
//! queries past a wall-clock deadline, and `--chaos` injects seeded
//! faults into the build to exercise the fault-tolerant ETL path (see
//! `documentation/fault-tolerance.md`).

use iyp_core::{studies, DatasetId, Iyp, Params, SimConfig};
use iyp_journal::{DurableGraph, FsyncPolicy};
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Args {
    command: String,
    scale: String,
    seed: u64,
    out: Option<PathBuf>,
    snapshot: Option<PathBuf>,
    addr: String,
    metrics: bool,
    journal: Option<PathBuf>,
    fsync: String,
    threads: Option<usize>,
    max_conns: Option<usize>,
    query_timeout: Option<std::time::Duration>,
    cache_mb: Option<usize>,
    chaos: Option<u64>,
    rest: Vec<String>,
}

fn parse_args(argv: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut argv = argv.into_iter();
    let command = argv.next().unwrap_or_else(|| "help".to_string());
    let mut args = Args {
        command,
        scale: "small".into(),
        seed: 42,
        out: None,
        snapshot: None,
        addr: "127.0.0.1:7687".into(),
        metrics: false,
        journal: None,
        fsync: "always".into(),
        threads: None,
        max_conns: None,
        query_timeout: None,
        cache_mb: None,
        chaos: None,
        rest: Vec::new(),
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--scale" => args.scale = argv.next().ok_or("--scale needs a value")?,
            "--seed" => {
                args.seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed must be an integer")?
            }
            "--out" => args.out = Some(PathBuf::from(argv.next().ok_or("--out needs a path")?)),
            "--snapshot" => {
                args.snapshot = Some(PathBuf::from(argv.next().ok_or("--snapshot needs a path")?))
            }
            "--addr" => args.addr = argv.next().ok_or("--addr needs a value")?,
            "--metrics" => args.metrics = true,
            "--journal" => {
                args.journal = Some(PathBuf::from(argv.next().ok_or("--journal needs a path")?))
            }
            "--fsync" => args.fsync = argv.next().ok_or("--fsync needs a value")?,
            "--threads" => {
                args.threads = Some(
                    argv.next()
                        .ok_or("--threads needs a value")?
                        .parse()
                        .map_err(|_| "--threads must be an integer")?,
                )
            }
            "--max-conns" => {
                args.max_conns = Some(
                    argv.next()
                        .ok_or("--max-conns needs a value")?
                        .parse()
                        .map_err(|_| "--max-conns must be an integer")?,
                )
            }
            "--query-timeout" => {
                let secs: f64 = argv
                    .next()
                    .ok_or("--query-timeout needs a value (seconds)")?
                    .parse()
                    .map_err(|_| "--query-timeout must be a number of seconds")?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err("--query-timeout must be a positive number of seconds".into());
                }
                args.query_timeout = Some(std::time::Duration::from_secs_f64(secs));
            }
            "--cache-mb" => {
                args.cache_mb = Some(
                    argv.next()
                        .ok_or("--cache-mb needs a value (MiB)")?
                        .parse()
                        .map_err(|_| "--cache-mb must be an integer number of MiB")?,
                )
            }
            "--chaos" => {
                args.chaos = Some(
                    argv.next()
                        .ok_or("--chaos needs a seed")?
                        .parse()
                        .map_err(|_| "--chaos must be an integer seed")?,
                )
            }
            other => args.rest.push(other.to_string()),
        }
    }
    Ok(args)
}

fn config_of(scale: &str) -> SimConfig {
    match scale {
        "tiny" => SimConfig::tiny(),
        "default" | "full" => SimConfig::default(),
        _ => SimConfig::small(),
    }
}

fn load_or_build(args: &Args) -> Result<Iyp, String> {
    match &args.snapshot {
        Some(path) => {
            eprintln!("loading snapshot {}...", path.display());
            Iyp::load_snapshot(path).map_err(|e| e.to_string())
        }
        None => {
            eprintln!(
                "building fresh graph ({} scale, seed {})...",
                args.scale, args.seed
            );
            Iyp::build(&config_of(&args.scale), args.seed).map_err(|e| e.to_string())
        }
    }
}

/// How many datasets `--chaos` targets: enough to exercise every fault
/// kind while leaving most of the build clean.
const CHAOS_TARGETS: usize = 8;

fn cmd_build(args: &Args) -> Result<(), String> {
    if args.metrics {
        iyp_telemetry::enable();
    }
    let iyp = match args.chaos {
        None => Iyp::build(&config_of(&args.scale), args.seed).map_err(|e| e.to_string())?,
        Some(chaos_seed) => {
            let world = iyp_core::World::generate(&config_of(&args.scale), args.seed);
            let plan = iyp_core::simnet::FaultPlan::generate(chaos_seed, CHAOS_TARGETS);
            eprintln!(
                "chaos plan (seed {chaos_seed}): {} datasets targeted",
                plan.affected().len()
            );
            let options = iyp_core::BuildOptions::default().with_chaos(plan);
            Iyp::build_from_world(&world, &options).map_err(|e| e.to_string())?
        }
    };
    println!("{}", iyp.report());
    if args.metrics {
        println!("{}", iyp.report().render_timings());
        println!("-- telemetry exposition --");
        print!("{}", iyp_telemetry::render());
    }
    if let Some(out) = &args.out {
        iyp.save_snapshot(out).map_err(|e| e.to_string())?;
        println!("snapshot written to {}", out.display());
    }
    if let Some(dir) = &args.journal {
        let policy = FsyncPolicy::parse(&args.fsync)?;
        iyp.into_durable(dir, policy).map_err(|e| e.to_string())?;
        println!("journal seeded in {} (generation 1)", dir.display());
    }
    Ok(())
}

fn run_and_print(iyp: &Iyp, text: &str) {
    match iyp.query_with(text, &Params::new()) {
        Ok(rs) => {
            print!("{}", rs.render(iyp.graph()));
            println!("({} rows)", rs.rows.len());
        }
        Err(e) => eprintln!("error: {e}"),
    }
}

fn cmd_query(args: &Args) -> Result<(), String> {
    let text = args.rest.join(" ");
    if text.trim().is_empty() {
        return Err("query text required".into());
    }
    let iyp = load_or_build(args)?;
    run_and_print(&iyp, &text);
    Ok(())
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    let text = args.rest.join(" ");
    if text.trim().is_empty() {
        return Err("query text required".into());
    }
    let iyp = load_or_build(args)?;
    let (rs, plan) = iyp.profile(&text).map_err(|e| e.to_string())?;
    print!("{}", rs.render(iyp.graph()));
    println!("({} rows)\n", rs.rows.len());
    println!("{}", plan.render());
    Ok(())
}

fn cmd_shell(args: &Args) -> Result<(), String> {
    let mut iyp = load_or_build(args)?;
    eprintln!(
        "IYP shell — end queries with ';', type 'quit;' to exit.\n\
         Write clauses (CREATE/MERGE/SET/DELETE) modify this local instance."
    );
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            eprint!("iyp> ");
        } else {
            eprint!("...> ");
        }
        std::io::stderr().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => return Err(e.to_string()),
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let text = buffer.trim().trim_end_matches(';').trim().to_string();
        buffer.clear();
        if text.eq_ignore_ascii_case("quit") || text.eq_ignore_ascii_case("exit") {
            break;
        }
        if text.is_empty() {
            continue;
        }
        // EXPLAIN/PROFILE are read-only introspection — route them
        // through the read path (the write path rejects them).
        let first = text
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_ascii_lowercase();
        if first == "explain" || first == "profile" {
            run_and_print(&iyp, &text);
            continue;
        }
        match iyp.update(&text) {
            Ok((rs, summary)) => {
                if !rs.columns.is_empty() {
                    print!("{}", rs.render(iyp.graph()));
                    println!("({} rows)", rs.rows.len());
                }
                if summary != Default::default() {
                    println!(
                        "+{} nodes, +{} rels, {} props set, -{} nodes, -{} rels",
                        summary.nodes_created,
                        summary.rels_created,
                        summary.props_set,
                        summary.nodes_deleted,
                        summary.rels_deleted
                    );
                }
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    // A serving process records its own metrics: the `stats` command
    // (and the busy-rejection counter) are useless on a recorder
    // that never turned on.
    iyp_telemetry::enable();
    let mut options = iyp_server::ServerOptions::default();
    if let Some(cap) = args.max_conns {
        if cap == 0 {
            return Err("--max-conns must be at least 1".into());
        }
        options.max_connections = cap;
    }
    options.query_timeout = args.query_timeout;
    options.cache_mb = args.cache_mb;
    let server = match &args.journal {
        None => {
            let iyp = load_or_build(args)?;
            let graph = Arc::new(iyp.into_graph());
            let server = iyp_server::Server::start_service_with(
                iyp_server::Service::ReadOnly(graph),
                &args.addr,
                options,
            )
            .map_err(|e| e.to_string())?;
            // "listening on …" must stay machine-parseable: tests and
            // scripts read the bound address from it (port 0 support).
            println!("listening on {}", server.addr());
            println!("serving read-only IYP — protocol: one JSON request per line");
            println!("example: {{\"query\": \"MATCH (a:AS) RETURN count(a)\"}}");
            server
        }
        Some(dir) => {
            let policy = FsyncPolicy::parse(&args.fsync)?;
            let durable = if DurableGraph::exists(dir) {
                let (durable, report) =
                    DurableGraph::open(dir, policy).map_err(|e| e.to_string())?;
                eprintln!(
                    "recovered journal {} (generation {}, {} ops replayed{})",
                    dir.display(),
                    report.generation,
                    report.replay.ops,
                    if report.replay.truncated_bytes > 0 {
                        format!(", {} torn bytes truncated", report.replay.truncated_bytes)
                    } else {
                        String::new()
                    }
                );
                durable
            } else {
                let iyp = load_or_build(args)?;
                eprintln!("seeding journal {} (generation 1)", dir.display());
                DurableGraph::seed(dir, iyp.into_graph(), policy).map_err(|e| e.to_string())?
            };
            let server = iyp_server::Server::start_service_with(
                iyp_server::Service::Durable(Arc::new(durable)),
                &args.addr,
                options,
            )
            .map_err(|e| e.to_string())?;
            println!("listening on {}", server.addr());
            println!("serving journaled IYP — writes: {{\"cmd\": \"write\", \"query\": …}}");
            println!("checkpoint: {{\"cmd\": \"checkpoint\"}}");
            server
        }
    };
    let _server = server;
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn cmd_recover(args: &Args) -> Result<(), String> {
    let dir = args.journal.as_ref().ok_or("recover needs --journal DIR")?;
    if !DurableGraph::exists(dir) {
        return Err(format!("no journal state in {}", dir.display()));
    }
    let policy = FsyncPolicy::parse(&args.fsync)?;
    let (durable, report) = DurableGraph::open(dir, policy).map_err(|e| e.to_string())?;
    println!(
        "recovered generation {}: snapshot {}, {} batches / {} ops replayed",
        report.generation,
        if report.snapshot_loaded {
            "loaded"
        } else {
            "none"
        },
        report.replay.batches,
        report.replay.ops
    );
    if report.replay.truncated_bytes > 0 {
        println!(
            "torn tail: {} bytes truncated{}",
            report.replay.truncated_bytes,
            if report.replay.repaired {
                " (repaired)"
            } else {
                ""
            }
        );
    }
    if report.removed_stale_files > 0 {
        println!("removed {} stale files", report.removed_stale_files);
    }
    let generation = durable.checkpoint().map_err(|e| e.to_string())?;
    println!("compacted into generation {generation}");
    let graph = durable.into_graph();
    println!(
        "graph: {} nodes, {} rels",
        graph.node_count(),
        graph.rel_count()
    );
    if let Some(out) = &args.out {
        iyp_graph::snapshot::save_binary(&graph, out).map_err(|e| e.to_string())?;
        println!("snapshot exported to {}", out.display());
    }
    Ok(())
}

fn cmd_studies(args: &Args) -> Result<(), String> {
    let iyp = load_or_build(args)?;
    let g = iyp.graph();
    let r = studies::ripki_study(g);
    println!("== Table 2 (RiPKI) ==");
    println!(
        "invalid {:.2}%  covered {:.1}%  top {:.1}%  bottom {:.1}%  cdn {:.1}%",
        r.invalid_pct, r.covered_pct, r.top_pct, r.bottom_pct, r.cdn_pct
    );
    let bp = studies::best_practices(g);
    println!("\n== Table 3 (DNS best practices) ==");
    println!(
        "coverage {:.1}%  discarded {:.1}%  meet {:.1}%  exceed {:.1}%  not-meet {:.1}%  glue {:.1}%",
        bp.coverage_pct, bp.discarded_pct, bp.meet_pct, bp.exceed_pct, bp.not_meet_pct,
        bp.in_zone_glue_pct
    );
    let si = studies::shared_infrastructure(g);
    println!("\n== Tables 4 & 5 (shared infrastructure) ==");
    println!(
        "cno by NS      med {} max {}",
        si.cno_by_ns.median, si.cno_by_ns.max
    );
    println!(
        "cno by /24     med {} max {}",
        si.cno_by_slash24.median, si.cno_by_slash24.max
    );
    println!(
        "cno by prefix  med {} max {}",
        si.cno_by_prefix.median, si.cno_by_prefix.max
    );
    println!(
        "all by prefix  med {} max {}",
        si.all_by_prefix.median, si.all_by_prefix.max
    );
    println!(
        "all by NS      med {} max {}",
        si.all_by_ns.median, si.all_by_ns.max
    );
    let ns = studies::nameserver_rpki(g);
    let hc = studies::hosting_consolidation(g);
    println!("\n== §5.1 (insights) ==");
    println!(
        "NS prefixes covered {:.1}%  NS domains covered {:.1}%  hosting domains covered {:.1}%",
        ns.prefix_covered_pct, ns.domain_covered_pct, hc.domain_covered_pct
    );
    Ok(())
}

fn cmd_datasets() {
    println!(
        "{:<26} {:<36} {:<9}",
        "Organization", "Dataset", "Frequency"
    );
    for d in iyp_core::simnet::datasets::ALL_DATASETS {
        println!(
            "{:<26} {:<36} {:<9}",
            d.organization(),
            d.name(),
            d.frequency()
        );
    }
    let _ = DatasetId::TrancoList; // referenced for doc purposes
}

fn help() {
    eprintln!(
        "iyp — Internet Yellow Pages
usage:
  iyp build   [--scale tiny|small|default] [--seed N] [--out FILE] [--journal DIR] [--metrics]
              [--chaos SEED]
  iyp query   [--snapshot FILE] [--threads N] [--cache-mb MB] '<cypher>'
  iyp profile [--snapshot FILE] [--threads N] [--cache-mb MB] '<cypher>'
  iyp shell   [--snapshot FILE]
  iyp serve   [--snapshot FILE] [--addr HOST:PORT] [--threads N] [--max-conns N]
              [--query-timeout SECS] [--cache-mb MB] [--journal DIR]
              [--fsync always|never|every=N]
  iyp recover --journal DIR [--out FILE]
  iyp studies [--snapshot FILE]
  iyp datasets"
    );
}

fn run(args: &Args) -> Result<(), String> {
    if let Some(n) = args.threads {
        if n == 0 {
            return Err("--threads must be at least 1".into());
        }
        iyp_cypher::set_threads(n);
    }
    if let Some(mb) = args.cache_mb {
        // Size the process-global result cache (query/profile/shell go
        // through it); `serve` additionally sizes its own per-service
        // cache via ServerOptions.
        iyp_cypher::cache::global().set_capacity(mb << 20);
    }
    match args.command.as_str() {
        "build" => cmd_build(args),
        "query" => cmd_query(args),
        "profile" => cmd_profile(args),
        "shell" => cmd_shell(args),
        "serve" => cmd_serve(args),
        "recover" => cmd_recover(args),
        "studies" => cmd_studies(args),
        "datasets" => {
            cmd_datasets();
            Ok(())
        }
        "help" | "--help" | "-h" => {
            help();
            Ok(())
        }
        other => {
            help();
            Err(format!("unknown command `{other}`"))
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            help();
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_args_defaults() {
        let a = parse_args(argv(&[])).unwrap();
        assert_eq!(a.command, "help");
        assert_eq!(a.scale, "small");
        assert_eq!(a.seed, 42);
        assert!(!a.metrics);
        assert!(a.rest.is_empty());
    }

    #[test]
    fn parse_args_full_build_invocation() {
        let a = parse_args(argv(&[
            "build",
            "--scale",
            "tiny",
            "--seed",
            "7",
            "--out",
            "x.snap",
            "--metrics",
        ]))
        .unwrap();
        assert_eq!(a.command, "build");
        assert_eq!(a.scale, "tiny");
        assert_eq!(a.seed, 7);
        assert_eq!(a.out, Some(PathBuf::from("x.snap")));
        assert!(a.metrics);
    }

    #[test]
    fn parse_args_journal_flags() {
        let a = parse_args(argv(&[
            "serve",
            "--journal",
            "/tmp/j",
            "--fsync",
            "every=16",
            "--addr",
            "127.0.0.1:0",
        ]))
        .unwrap();
        assert_eq!(a.journal, Some(PathBuf::from("/tmp/j")));
        assert_eq!(a.fsync, "every=16");
        assert_eq!(a.addr, "127.0.0.1:0");
        let d = parse_args(argv(&["serve"])).unwrap();
        assert_eq!(d.journal, None);
        assert_eq!(d.fsync, "always");
        assert!(parse_args(argv(&["serve", "--journal"])).is_err());
    }

    #[test]
    fn parse_args_threads_and_max_conns() {
        let a = parse_args(argv(&["serve", "--threads", "4", "--max-conns", "128"])).unwrap();
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.max_conns, Some(128));
        let d = parse_args(argv(&["profile", "RETURN 1"])).unwrap();
        assert_eq!(d.threads, None);
        assert_eq!(d.max_conns, None);
        assert!(parse_args(argv(&["serve", "--threads"])).is_err());
        assert!(parse_args(argv(&["serve", "--threads", "four"])).is_err());
        assert!(parse_args(argv(&["serve", "--max-conns", "-1"])).is_err());
    }

    #[test]
    fn parse_args_query_timeout_and_chaos() {
        let a = parse_args(argv(&["serve", "--query-timeout", "2.5"])).unwrap();
        assert_eq!(
            a.query_timeout,
            Some(std::time::Duration::from_millis(2500))
        );
        let b = parse_args(argv(&["build", "--chaos", "99"])).unwrap();
        assert_eq!(b.chaos, Some(99));
        let d = parse_args(argv(&["serve"])).unwrap();
        assert_eq!(d.query_timeout, None);
        assert_eq!(d.chaos, None);
        assert!(parse_args(argv(&["serve", "--query-timeout"])).is_err());
        assert!(parse_args(argv(&["serve", "--query-timeout", "0"])).is_err());
        assert!(parse_args(argv(&["serve", "--query-timeout", "-3"])).is_err());
        assert!(parse_args(argv(&["serve", "--query-timeout", "soon"])).is_err());
        assert!(parse_args(argv(&["build", "--chaos"])).is_err());
        assert!(parse_args(argv(&["build", "--chaos", "x"])).is_err());
    }

    #[test]
    fn parse_args_cache_mb() {
        let a = parse_args(argv(&["serve", "--cache-mb", "64"])).unwrap();
        assert_eq!(a.cache_mb, Some(64));
        let b = parse_args(argv(&["query", "--cache-mb", "0", "RETURN 1"])).unwrap();
        assert_eq!(b.cache_mb, Some(0), "0 explicitly disables the cache");
        let d = parse_args(argv(&["serve"])).unwrap();
        assert_eq!(d.cache_mb, None);
        assert!(parse_args(argv(&["serve", "--cache-mb"])).is_err());
        assert!(parse_args(argv(&["serve", "--cache-mb", "lots"])).is_err());
        assert!(parse_args(argv(&["serve", "--cache-mb", "-4"])).is_err());
    }

    #[test]
    fn zero_threads_is_rejected_at_run_time() {
        let a = parse_args(argv(&["query", "--threads", "0", "RETURN 1"])).unwrap();
        assert!(run(&a).is_err());
    }

    #[test]
    fn parse_args_collects_query_text() {
        let a = parse_args(argv(&["query", "MATCH (n)", "RETURN n"])).unwrap();
        assert_eq!(a.rest.join(" "), "MATCH (n) RETURN n");
    }

    #[test]
    fn parse_args_rejects_missing_values() {
        assert!(parse_args(argv(&["build", "--seed"])).is_err());
        assert!(parse_args(argv(&["build", "--seed", "NaN"])).is_err());
        assert!(parse_args(argv(&["query", "--snapshot"])).is_err());
    }

    #[test]
    fn unknown_command_errors() {
        let a = parse_args(argv(&["bogus"])).unwrap();
        assert!(run(&a).is_err());
    }
}
