//! Integration tests for graph construction (§2.3, Figure 2):
//! canonicalisation, cross-dataset fusion, and refinement.

use iyp::crawlers::{import_dataset, Importer};
use iyp::ontology::{validate_graph, Reference, Relationship};
use iyp::{BuildOptions, DatasetId, Graph, Iyp, Props, SimConfig, World};
use std::sync::OnceLock;

fn built() -> &'static Iyp {
    static CELL: OnceLock<Iyp> = OnceLock::new();
    CELL.get_or_init(|| Iyp::build(&SimConfig::tiny(), 42).expect("build"))
}

#[test]
fn figure2_canonicalisation_merges_spellings() {
    // The paper's example: 2001:DB8::/32 (IHR) and 2001:0db8::/32
    // (BGPKIT) must land on one node.
    let mut g = Graph::new();
    let mut imp = Importer::new(&mut g, Reference::new("IHR", "ihr.rov", 0));
    let a = imp.prefix_node("2001:DB8::/32").unwrap();
    let mut imp = Importer::new(&mut g, Reference::new("BGPKIT", "bgpkit.pfx2as", 0));
    let b = imp.prefix_node("2001:0db8::/32").unwrap();
    assert_eq!(a, b);
    assert_eq!(g.label_count("Prefix"), 1);
}

#[test]
fn parallel_links_keep_dataset_identity() {
    // §2.3: the same fact from two datasets = two links, selectable by
    // reference_name.
    let mut g = Graph::new();
    let mut imp = Importer::new(&mut g, Reference::new("IHR", "ihr.rov", 0));
    let a = imp.as_node(2497);
    let p = imp.prefix_node("192.0.2.0/24").unwrap();
    imp.link(a, Relationship::Originate, p, Props::new())
        .unwrap();
    let mut imp = Importer::new(&mut g, Reference::new("BGPKIT", "bgpkit.pfx2as", 0));
    imp.link(a, Relationship::Originate, p, Props::new())
        .unwrap();

    let rs = iyp::cypher::query(
        &g,
        "MATCH (:AS)-[r:ORIGINATE]-(:Prefix) RETURN DISTINCT r.reference_name ORDER BY r.reference_name",
        &Default::default(),
    )
    .unwrap();
    let names: Vec<_> = rs
        .rows
        .iter()
        .map(|row| row[0].as_scalar().unwrap().as_str().unwrap().to_string())
        .collect();
    assert_eq!(names, vec!["bgpkit.pfx2as", "ihr.rov"]);
}

#[test]
fn fusion_across_all_datasets_creates_one_as_population() {
    // Many datasets mention the same ASes; the AS node population must
    // equal the world's, not a multiple of it.
    let iyp = built();
    let w = World::generate(&SimConfig::tiny(), 42);
    assert_eq!(iyp.graph().label_count("AS"), w.ases.len());
    assert!(iyp.graph().label_count("Country") > 0);
    // Prefixes: announced prefixes plus ROA parents (max-len invalids),
    // IXP peering LANs — never fewer than the announcements.
    assert!(iyp.graph().label_count("Prefix") >= w.prefixes.len());
}

#[test]
fn full_build_validates_against_ontology() {
    let iyp = built();
    assert_eq!(iyp.report().violations, 0);
    let violations = validate_graph(iyp.graph());
    assert!(violations.is_empty(), "violations: {violations:?}");
}

#[test]
fn refinement_adds_the_implicit_knowledge() {
    let iyp = built();
    // Every IP node got an af property and a PART_OF prefix link (all
    // synthetic IPs fall in announced space).
    let rs = iyp
        .query("MATCH (i:IP) WHERE i.af IS NULL RETURN count(i)")
        .unwrap();
    assert_eq!(rs.single_int(), Some(0));
    let with_pfx = iyp
        .query("MATCH (i:IP)-[:PART_OF]-(:Prefix) RETURN count(DISTINCT i.ip)")
        .unwrap()
        .single_int()
        .unwrap();
    let total = iyp
        .query("MATCH (i:IP) RETURN count(i)")
        .unwrap()
        .single_int()
        .unwrap();
    assert!(
        with_pfx * 100 >= total * 95,
        "only {with_pfx}/{total} IPs linked to prefixes"
    );
    // Countries all carry both codes and a name.
    let rs = iyp
        .query("MATCH (c:Country) WHERE c.alpha3 IS NULL OR c.name IS NULL RETURN count(c)")
        .unwrap();
    assert_eq!(rs.single_int(), Some(0));
}

#[test]
fn without_refinement_the_links_are_absent() {
    let w = World::generate(&SimConfig::tiny(), 42);
    let opts = BuildOptions::only(&[DatasetId::OpenintelTranco1m, DatasetId::BgpkitPfx2as])
        .without_refinement();
    let (g, _) = iyp::pipeline::build_graph(&w, &opts).unwrap();
    let rs = iyp::cypher::query(
        &g,
        "MATCH (:IP)-[:PART_OF]-(:Prefix) RETURN count(*)",
        &Default::default(),
    )
    .unwrap();
    assert_eq!(rs.single_int(), Some(0));
}

#[test]
fn covering_prefix_chain_is_navigable() {
    // ROA parent prefixes (from max-length invalids) cover announced
    // prefixes; the refinement links them.
    let iyp = built();
    let rs = iyp
        .query("MATCH (a:Prefix)-[:PART_OF]-(b:Prefix) RETURN count(*)")
        .unwrap();
    // There may be zero in a tiny world without invalids; just ensure
    // the query runs and, when links exist, they are loop-free.
    if rs.single_int().unwrap() > 0 {
        let rs = iyp
            .query(
                "MATCH (a:Prefix)-[:PART_OF]->(b:Prefix) WHERE a.prefix = b.prefix RETURN count(*)",
            )
            .unwrap();
        assert_eq!(rs.single_int(), Some(0), "self covering link");
    }
}

#[test]
fn every_crawler_stamps_provenance() {
    let iyp = built();
    for rel in iyp.graph().all_rels() {
        assert!(
            rel.prop("reference_name").is_some(),
            "link without reference_name: {:?}",
            iyp.graph().symbols().rel_type_name(rel.rel_type)
        );
        assert!(rel.prop("reference_org").is_some());
        assert!(rel.prop("reference_time_fetch").is_some());
    }
}

#[test]
fn single_dataset_import_is_idempotent_on_nodes() {
    // Importing the same dataset twice doubles links but not nodes.
    let w = World::generate(&SimConfig::tiny(), 42);
    let text = w.render_dataset(DatasetId::BgpkitPfx2as);
    let mut g = Graph::new();
    import_dataset(&mut g, DatasetId::BgpkitPfx2as, &text, 0).unwrap();
    let nodes = g.node_count();
    let rels = g.rel_count();
    import_dataset(&mut g, DatasetId::BgpkitPfx2as, &text, 1).unwrap();
    assert_eq!(g.node_count(), nodes);
    assert_eq!(g.rel_count(), rels * 2);
}
