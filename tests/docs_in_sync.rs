//! Guards against drift between the code and the committed
//! documentation pages (regenerate with `cargo run --example gen_docs`).

fn check(file: &str, expected: String) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("documentation")
        .join(file);
    let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing {}: {e} — run `cargo run --example gen_docs`",
            path.display()
        )
    });
    assert_eq!(
        on_disk, expected,
        "{file} is stale — run `cargo run --example gen_docs`"
    );
}

#[test]
fn node_types_page_in_sync() {
    check("node_types.md", iyp::docs::node_types_md());
}

#[test]
fn relationship_types_page_in_sync() {
    check("relationship_types.md", iyp::docs::relationship_types_md());
}

#[test]
fn data_sources_page_in_sync() {
    check("data-sources.md", iyp::docs::data_sources_md());
}

#[test]
fn telemetry_page_in_sync() {
    check("telemetry.md", iyp::docs::telemetry_md());
}

#[test]
fn durability_page_in_sync() {
    check("durability.md", iyp::docs::durability_md());
}

#[test]
fn query_engine_page_in_sync() {
    check("query-engine.md", iyp::docs::query_engine_md());
}

#[test]
fn query_cache_page_in_sync() {
    check("query-cache.md", iyp::docs::query_cache_md());
}

#[test]
fn fault_tolerance_page_in_sync() {
    check("fault-tolerance.md", iyp::docs::fault_tolerance_md());
}
