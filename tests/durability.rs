//! End-to-end durability: a real `iyp serve --journal` process is
//! killed with SIGKILL (no shutdown, no checkpoint) and restarted; the
//! recovered graph must be byte-identical — node/relationship IDs
//! included — to what the writes produced before the crash. Also:
//! truncating the WAL at an arbitrary byte offset recovers the longest
//! valid prefix.

use iyp_server::{Client, Response};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static DIR: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let n = DIR.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("iyp-e2e-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns `iyp serve --journal <dir>` on an ephemeral port and waits
/// for the machine-parseable `listening on <addr>` line.
fn spawn_server(journal: &std::path::Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_iyp"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--scale",
            "tiny",
            "--fsync",
            "always",
            "--journal",
        ])
        .arg(journal)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn iyp serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before listening")
            .expect("read stdout");
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.trim().parse().expect("parse addr");
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn connect_with_retry(addr: SocketAddr) -> Client {
    for _ in 0..50 {
        if let Ok(c) = Client::connect(addr) {
            return c;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    panic!("could not connect to {addr}");
}

fn graph_fingerprint(client: &mut Client) -> Vec<serde_json::Value> {
    // IDs travel in entity encodings, so returning whole entities pins
    // down the exact ID assignment, not just counts.
    let mut fp = Vec::new();
    for q in [
        "MATCH (n) RETURN n ORDER BY id(n)",
        "MATCH ()-[r]->() RETURN r ORDER BY id(r)",
    ] {
        let table = client.query(q).expect("fingerprint query");
        fp.push(serde_json::json!(table.rows));
    }
    fp
}

#[test]
fn sigkill_without_checkpoint_loses_nothing() {
    let dir = tmpdir("kill");
    let (mut child, addr) = spawn_server(&dir);
    let mut client = connect_with_retry(addr);

    // Mutate over the wire: creates, merges, props, a delete — enough
    // to leave tombstones in the ID space.
    for q in [
        "CREATE (:Tag {label: 'crash-test'})",
        "MERGE (a:AS {asn: 64500}) SET a.name = 'TESTNET-1'",
        "MERGE (a:AS {asn: 64501}) SET a.name = 'TESTNET-2'",
        "MATCH (a:AS {asn: 64500}), (b:AS {asn: 64501}) CREATE (a)-[:PEERS_WITH]->(b)",
        "MATCH (t:Tag {label: 'crash-test'}) DELETE t",
        "CREATE (:Tag {label: 'after-delete'})",
    ] {
        let resp = client.write(q).expect("write");
        assert!(
            matches!(resp, Response::Written { .. }),
            "write failed: {resp:?} for {q}"
        );
    }
    let before = graph_fingerprint(&mut client);
    drop(client);

    // SIGKILL: no flush, no checkpoint, no destructors.
    child.kill().expect("kill");
    child.wait().expect("wait");

    let (mut child, addr) = spawn_server(&dir);
    let mut client = connect_with_retry(addr);
    let after = graph_fingerprint(&mut client);
    assert_eq!(before, after, "graph changed across SIGKILL + recovery");

    // And the recovered server keeps accepting writes.
    let resp = client.write("CREATE (:Tag {label: 'post-crash'})").unwrap();
    assert!(matches!(resp, Response::Written { .. }));
    drop(client);
    child.kill().expect("kill");
    child.wait().expect("wait");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_wal_recovers_longest_valid_prefix() {
    let dir = tmpdir("trunc");
    let (mut child, addr) = spawn_server(&dir);
    let mut client = connect_with_retry(addr);
    for i in 0..8 {
        client
            .write(&format!("MERGE (a:AS {{asn: {}}})", 65000 + i))
            .expect("write");
    }
    drop(client);
    child.kill().expect("kill");
    child.wait().expect("wait");

    // Chop the WAL mid-file — as if the disk lost the tail.
    let wal = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "log"))
        .expect("wal file");
    let bytes = std::fs::read(&wal).unwrap();
    assert!(bytes.len() > 64, "wal unexpectedly small: {}", bytes.len());
    std::fs::write(&wal, &bytes[..bytes.len() * 2 / 3]).unwrap();

    // `iyp recover` repairs, reports, compacts, and exports.
    let out = dir.join("recovered.bin");
    let output = Command::new(env!("CARGO_BIN_EXE_iyp"))
        .args(["recover", "--journal"])
        .arg(&dir)
        .arg("--out")
        .arg(&out)
        .output()
        .expect("run recover");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success(), "recover failed: {stdout}");
    assert!(
        stdout.contains("torn tail:"),
        "no torn-tail report: {stdout}"
    );
    assert!(stdout.contains("compacted into generation"), "{stdout}");

    // The exported snapshot holds the surviving prefix: a valid graph
    // with at least the seed contents, and a restart serves it.
    let graph = iyp_graph::snapshot::load_binary(&out).expect("exported snapshot loads");
    assert!(graph.node_count() > 0);

    let (mut child, addr) = spawn_server(&dir);
    let mut client = connect_with_retry(addr);
    let table = client.query("MATCH (a:AS) RETURN count(a)").unwrap();
    assert!(table.single_int().unwrap() > 0);
    drop(client);
    child.kill().expect("kill");
    child.wait().expect("wait");
    let _ = std::fs::remove_dir_all(&dir);
}
