//! Every shipped notebook parses and runs cleanly (§6.2: shared
//! queries must keep working on fresh snapshots).

use iyp::notebook::{parse_notebook, run_notebook};
use iyp::{Iyp, SimConfig};

#[test]
fn all_notebooks_run() {
    let iyp = Iyp::build(&SimConfig::tiny(), 42).expect("build");
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("notebooks");
    let mut found = 0;
    for entry in std::fs::read_dir(dir).expect("notebooks dir") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|x| x != "cypher") {
            continue;
        }
        found += 1;
        let nb = parse_notebook(&std::fs::read_to_string(&path).unwrap());
        assert!(!nb.title.is_empty(), "{} has no title", path.display());
        assert!(!nb.cells.is_empty(), "{} has no cells", path.display());
        let report =
            run_notebook(&iyp, &nb).unwrap_or_else(|e| panic!("{} failed: {e}", path.display()));
        assert!(report.contains("```cypher"));
    }
    assert!(found >= 3, "expected at least 3 notebooks, found {found}");
}
