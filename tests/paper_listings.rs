//! The paper's Cypher listings, executed verbatim against a full build.

use iyp::{Iyp, SimConfig};
use std::sync::OnceLock;

fn built() -> &'static Iyp {
    static CELL: OnceLock<Iyp> = OnceLock::new();
    CELL.get_or_init(|| Iyp::build(&SimConfig::tiny(), 42).expect("build"))
}

#[test]
fn listing_1_runs_verbatim() {
    let rs = built()
        .query(
            "// Select ASes originating prefixes
             MATCH (x:AS)-[:ORIGINATE]-(:Prefix)
             // Return the AS's ASN
             RETURN DISTINCT x.asn",
        )
        .unwrap();
    assert!(!rs.rows.is_empty());
}

#[test]
fn listing_2_runs_verbatim() {
    let rs = built()
        .query(
            "// Find Prefixes with two originating ASes
             MATCH (x:AS)-[:ORIGINATE]-(p:Prefix)-[:ORIGINATE]-(y:AS)
             // Make sure that the ASNs of the two ASes are different
             WHERE x.asn <> y.asn
             // Return the prefix attribute of the Prefix node
             RETURN DISTINCT p.prefix",
        )
        .unwrap();
    // MOAS prefixes exist because BGPKIT and IHR disagree on the
    // planted-bug prefixes.
    assert!(!rs.rows.is_empty());
}

#[test]
fn listing_3_shape_runs_verbatim() {
    // Listing 3 anchored at 'CERN'; our synthetic orgs have different
    // names, so the query runs but may return nothing — the point is
    // that the exact query text parses and executes.
    let rs = built()
        .query(
            "// Find RPKI valid prefixes managed by CERN
             MATCH (org:Organization)-[:MANAGED_BY]-(:AS)-[:ORIGINATE]-(pfx:Prefix)-[:CATEGORIZED]-(:Tag {label:'RPKI Valid'})
             WHERE org.name = 'CERN'
             // Find popular hostnames in these prefixes (refered as pfx)
             MATCH (pfx)-[:PART_OF]-(:IP)-[:RESOLVES_TO {reference_name:'openintel.tranco1m'}]-(h:HostName)
             RETURN distinct h.name",
        )
        .unwrap();
    assert!(rs.rows.is_empty(), "no CERN in the synthetic world");
}

#[test]
fn listing_4_rpki_invalid_count() {
    let rs = built()
        .query(
            "MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(:DomainName)-[:PART_OF]-(:HostName)\
                   -[:RESOLVES_TO]-(:IP)-[:PART_OF]-(pfx:Prefix)-[:CATEGORIZED]-(t:Tag)
             WHERE t.label STARTS WITH 'RPKI Invalid'
             RETURN count(DISTINCT pfx)",
        )
        .unwrap();
    // Tiny worlds may legitimately have zero invalids; the query must
    // still return exactly one row.
    assert_eq!(rs.rows.len(), 1);
    assert!(rs.single_int().unwrap() >= 0);
}

#[test]
fn listing_5_ns_slash24_extraction() {
    // Listing 5's data-extraction step (we do the /24 grouping client
    // side, as the notebooks do in Python).
    let rs = built()
        .query(
            "MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(d:DomainName)\
                   -[:MANAGED_BY]-(a:AuthoritativeNameServer)-[:RESOLVES_TO]-(i:IP {af:4})
             RETURN d.name, a.name, collect(DISTINCT i.ip)",
        )
        .unwrap();
    assert!(!rs.rows.is_empty());
}

#[test]
fn listing_6_bgp_prefix_grouping() {
    let rs = built()
        .query(
            "// List prefixes of nameservers for all domain names in Tranco
             MATCH (r:Ranking {name: 'Tranco top 1M'})-[:RANK]-(d:DomainName)-[:MANAGED_BY]-(a:AuthoritativeNameServer)\
                   -[:RESOLVES_TO]-(i:IP {af:4})-[:PART_OF]-(pfx:Prefix)
             RETURN d, COLLECT(DISTINCT pfx)",
        )
        .unwrap();
    assert!(!rs.rows.is_empty());
    // The second column is a list of Prefix nodes.
    let first = &rs.rows[0][1];
    assert!(first.as_list().map(|l| !l.is_empty()).unwrap_or(false));
}
