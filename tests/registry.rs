//! Integration tests for the dataset registry (Tables 1 and 8).

use iyp::simnet::datasets::ALL_DATASETS;
use iyp::{DatasetId, SimConfig, World};
use std::collections::BTreeMap;

#[test]
fn table8_has_46_datasets() {
    assert_eq!(ALL_DATASETS.len(), 46);
}

#[test]
fn table8_organizations_and_counts() {
    // Table 8 row counts per organization.
    let mut per_org: BTreeMap<&str, usize> = BTreeMap::new();
    for d in ALL_DATASETS {
        *per_org.entry(d.organization()).or_default() += 1;
    }
    assert_eq!(per_org["Alice-LG"], 7);
    assert_eq!(per_org["BGPKIT"], 3);
    assert_eq!(per_org["BGP.Tools"], 3);
    assert_eq!(per_org["CAIDA"], 2);
    assert_eq!(per_org["Cloudflare"], 4);
    assert_eq!(per_org["IHR"], 3);
    assert_eq!(per_org["OpenINTEL"], 4);
    assert_eq!(per_org["PeeringDB"], 5);
    assert_eq!(per_org["RIPE NCC"], 3);
    for org in [
        "APNIC",
        "Cisco",
        "Citizen Lab",
        "Emile Aben",
        "Internet Intelligence Lab",
        "NRO",
        "Packet Clearing House",
        "SimulaMet",
        "Stanford",
        "Tranco",
        "Virginia Tech",
        "World Bank",
    ] {
        assert_eq!(per_org[org], 1, "{org}");
    }
}

#[test]
fn table1_example_rows_are_present() {
    // The example rows of Table 1 all exist with the right frequency.
    let find = |name: &str| -> DatasetId {
        *ALL_DATASETS
            .iter()
            .find(|d| d.name() == name)
            .unwrap_or_else(|| panic!("{name} missing"))
    };
    assert_eq!(find("bgpkit.pfx2as").frequency(), "Daily");
    assert_eq!(find("caida.asrank").frequency(), "Monthly");
    assert_eq!(find("stanford.asdb").frequency(), "6-month");
    assert_eq!(find("peeringdb.ix").frequency(), "API");
    assert_eq!(find("ihr.hegemony").organization(), "IHR");
    assert_eq!(find("openintel.tranco1m").organization(), "OpenINTEL");
}

#[test]
fn every_dataset_renders_nonempty_text() {
    let w = World::generate(&SimConfig::tiny(), 7);
    for d in ALL_DATASETS {
        let text = w.render_dataset(d);
        assert!(!text.trim().is_empty(), "{} rendered empty", d.name());
    }
}

#[test]
fn rendered_datasets_are_deterministic() {
    let a = World::generate(&SimConfig::tiny(), 7);
    let b = World::generate(&SimConfig::tiny(), 7);
    for d in ALL_DATASETS {
        assert_eq!(
            a.render_dataset(d),
            b.render_dataset(d),
            "{} differs",
            d.name()
        );
    }
}
