//! End-to-end reproduction tests: every table and figure of the paper,
//! asserted at the "shape" level DESIGN.md documents (who wins, rough
//! factors, orderings).

use iyp::crawlers::{RANKING_TRANCO, RANKING_UMBRELLA};
use iyp::studies::{
    best_practices, find_origin_disagreements, hosting_consolidation, nameserver_rpki, ripki_study,
    rpki_by_tag, shared_infrastructure, spof_study, SpofKind,
};
use iyp::{Iyp, SimConfig};
use std::sync::OnceLock;

fn built() -> &'static Iyp {
    static CELL: OnceLock<Iyp> = OnceLock::new();
    CELL.get_or_init(|| Iyp::build(&SimConfig::small(), 42).expect("build"))
}

#[test]
fn table2_ripki() {
    let r = ripki_study(built().graph());
    // Shape (paper 2024: 0.12 / 52.2 / 55.2 / 61.5 / 68.4):
    assert!(r.invalid_pct < 5.0, "invalid {:.2}%", r.invalid_pct);
    assert!(
        r.covered_pct > 35.0 && r.covered_pct < 70.0,
        "covered {:.1}%",
        r.covered_pct
    );
    assert!(
        r.bottom_pct > r.top_pct,
        "bottom {:.1} <= top {:.1}",
        r.bottom_pct,
        r.top_pct
    );
    assert!(
        r.cdn_pct > r.covered_pct,
        "cdn {:.1} <= overall {:.1}",
        r.cdn_pct,
        r.covered_pct
    );
    // And a long way from the 2015 RiPKI world (6% coverage).
    assert!(r.covered_pct > 6.0 * 4.0);
}

#[test]
fn sec414_per_tag_rpki() {
    let table = rpki_by_tag(built().graph());
    let get = |t: &str| {
        table
            .iter()
            .find(|x| x.tag == t)
            .unwrap_or_else(|| panic!("tag {t} missing"))
            .covered_pct
    };
    // Paper: DDoS Mitigation 76% ≫ Government 21% > Academic 16%.
    assert!(get("DDoS Mitigation") > get("Government"));
    assert!(get("DDoS Mitigation") > get("Academic"));
    assert!(get("Academic") < 40.0);
    assert!(get("Government") < 45.0);
    assert!(get("Content Delivery Network") > 50.0);
}

#[test]
fn table3_best_practices() {
    let r = best_practices(built().graph());
    // Paper 2024: 49 / 10 / 18 / 67 / 4 / 76.
    assert!(
        (r.coverage_pct - 49.0).abs() < 8.0,
        "coverage {:.1}",
        r.coverage_pct
    );
    assert!(
        r.discarded_pct > 3.0 && r.discarded_pct < 20.0,
        "discarded {:.1}",
        r.discarded_pct
    );
    // 2024 inversion: exceed clearly dominates meet (paper: 67 vs 18; at
    // default scale we measure ~61 vs ~26 — small scales sit closer).
    assert!(
        r.exceed_pct > 1.5 * r.meet_pct && r.exceed_pct > 40.0,
        "exceed {:.1} meet {:.1}",
        r.exceed_pct,
        r.meet_pct
    );
    assert!(r.not_meet_pct < 10.0, "not meet {:.1}", r.not_meet_pct);
    assert!(
        r.in_zone_glue_pct > 65.0 && r.in_zone_glue_pct < 95.0,
        "glue {:.1}",
        r.in_zone_glue_pct
    );
}

#[test]
fn table4_and_5_shared_infrastructure() {
    let r = shared_infrastructure(built().graph());
    // Table 4 shape: /24 grouping concentrates far more than NS-set
    // grouping (paper: max 114k vs 6k).
    assert!(
        r.cno_by_slash24.max >= 2 * r.cno_by_ns.max,
        "{:?} vs {:?}",
        r.cno_by_slash24,
        r.cno_by_ns
    );
    assert!(r.cno_by_slash24.median >= r.cno_by_ns.median);
    // Table 5 row 1: BGP prefixes ≈ /24 grouping (paper: "almost identical").
    let ratio = r.cno_by_prefix.max as f64 / r.cno_by_slash24.max as f64;
    assert!(
        ratio > 0.5 && ratio < 4.0,
        "prefix/slash24 max ratio {ratio}"
    );
    // Table 5 rows 2–3: widening to all Tranco grows every group.
    assert!(r.all_by_prefix.max >= r.cno_by_prefix.max);
    assert!(r.all_by_ns.max >= r.cno_by_ns.max);
    assert!(r.all_by_ns.median >= r.cno_by_ns.median);
}

#[test]
fn sec511_nameserver_rpki() {
    let r = nameserver_rpki(built().graph());
    // Paper: 48% of prefixes, 84% of domains — concentration means the
    // domain number is much larger.
    assert!(r.prefix_covered_pct > 20.0 && r.prefix_covered_pct < 75.0);
    assert!(r.domain_covered_pct > r.prefix_covered_pct + 10.0);
}

#[test]
fn sec512_hosting_consolidation() {
    let r = hosting_consolidation(built().graph());
    // Paper: 52.2% of prefixes vs 78.8% of domains vs 96% of CDN domains.
    assert!(r.domain_covered_pct > r.prefix_covered_pct + 10.0);
    assert!(
        r.cdn_domain_covered_pct > 80.0,
        "cdn domains {:.1}",
        r.cdn_domain_covered_pct
    );
}

#[test]
fn figure5_country_spof() {
    let r = spof_study(built().graph(), RANKING_TRANCO);
    assert!(r.domains > 1000);
    let top = r.top_countries(8);
    // US dominates third-party dependencies.
    let us = top.iter().find(|(c, _)| c == "US").expect("US in top-8");
    assert!(top.iter().all(|(_, v)| v[1] <= us.1[1]));
    // Direct dependencies dominate overall volume.
    let direct: usize = r
        .by_country
        .iter()
        .filter(|((_, k), _)| *k == SpofKind::Direct)
        .map(|(_, n)| n)
        .sum();
    let hier: usize = r
        .by_country
        .iter()
        .filter(|((_, k), _)| *k == SpofKind::Hierarchical)
        .map(|(_, n)| n)
        .sum();
    assert!(direct > 0 && hier > 0);
    // ccTLD registries put hierarchical weight on RU/CN/GB/DE/JP.
    for cc in ["RU", "CN"] {
        let n: usize = r
            .by_country
            .iter()
            .filter(|((c, k), _)| c == cc && *k == SpofKind::Hierarchical)
            .map(|(_, n)| n)
            .sum();
        assert!(n > 0, "no hierarchical dependency on {cc}");
    }
}

#[test]
fn figure6_as_spof() {
    let r = spof_study(built().graph(), RANKING_TRANCO);
    let top = r.top_ases(15);
    assert!(top.len() >= 5);
    // Provider roles differ: at least one direct-heavy and one
    // third-party-heavy AS (the GoDaddy/Akamai contrast).
    assert!(top.iter().any(|(_, v)| v[0] > v[1]));
    assert!(top.iter().any(|(_, v)| v[1] > 0));
}

#[test]
fn umbrella_panel_matches_tranco_shape() {
    let tranco = spof_study(built().graph(), RANKING_TRANCO);
    let umbrella = spof_study(built().graph(), RANKING_UMBRELLA);
    assert!(umbrella.domains > 0 && umbrella.domains < tranco.domains);
    // US leads third-party in both panels.
    let lead = |r: &iyp::studies::SpofResults| {
        r.top_countries(5)
            .into_iter()
            .max_by_key(|(_, v)| v[1])
            .map(|(c, _)| c)
    };
    assert_eq!(lead(&tranco).as_deref(), Some("US"));
    assert_eq!(lead(&umbrella).as_deref(), Some("US"));
}

#[test]
fn sec61_dataset_comparison_finds_planted_bug() {
    let diffs = find_origin_disagreements(built().graph());
    assert!(!diffs.is_empty());
    assert!(
        diffs.iter().all(|d| d.prefix.contains(':')),
        "bug must be IPv6-only"
    );
}
