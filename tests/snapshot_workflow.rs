//! The §3.1/§6.1 workflow: public snapshots, local instances,
//! confidential extensions.

use iyp::{Iyp, Props, SimConfig, Value};

#[test]
fn snapshot_roundtrip_preserves_study_results() {
    let iyp = Iyp::build(&SimConfig::tiny(), 42).expect("build");
    let before = iyp
        .query("MATCH (a:AS)-[:ORIGINATE]-(p:Prefix) RETURN count(*)")
        .unwrap()
        .single_int()
        .unwrap();

    let path = std::env::temp_dir().join("iyp_workflow_test.bin");
    iyp.save_snapshot(&path).unwrap();
    let local = Iyp::load_snapshot(&path).unwrap();
    let after = local
        .query("MATCH (a:AS)-[:ORIGINATE]-(p:Prefix) RETURN count(*)")
        .unwrap()
        .single_int()
        .unwrap();
    assert_eq!(before, after);

    // Same query, same result — the "sharing queries" reproducibility
    // story of §6.2.
    let q = "MATCH (t:Tag) RETURN t.label ORDER BY t.label";
    assert_eq!(iyp.query(q).unwrap(), local.query(q).unwrap());
    let _ = std::fs::remove_file(path);
}

#[test]
fn local_instance_integrates_confidential_data() {
    // §3.1: "A local instance is especially suitable for integrating
    // and analyzing confidential data with IYP."
    let path = std::env::temp_dir().join("iyp_confidential_test.bin");
    {
        let iyp = Iyp::build(&SimConfig::tiny(), 42).expect("build");
        iyp.save_snapshot(&path).unwrap();
    }
    let mut local = Iyp::load_snapshot(&path).unwrap();

    // Add a confidential dataset: internal tags on some ASes.
    let g = local.graph_mut();
    let tag = g.merge_node("Tag", "label", "internal: customer", Props::new());
    let ases: Vec<_> = g.nodes_with_label("AS").take(5).collect();
    for a in &ases {
        g.create_rel(
            *a,
            "CATEGORIZED",
            tag,
            iyp::graph::props([("reference_name", Value::Str("internal.crm".into()))]),
        )
        .unwrap();
    }

    // The confidential data joins against the public knowledge.
    let rs = local
        .query(
            "MATCH (:Tag {label: 'internal: customer'})-[:CATEGORIZED]-(a:AS)-[:ORIGINATE]-(p:Prefix)
             RETURN count(DISTINCT p.prefix)",
        )
        .unwrap();
    assert!(rs.single_int().unwrap() > 0);
    let _ = std::fs::remove_file(path);
}

#[test]
fn weekly_refresh_changes_data_not_queries() {
    // §6.2: re-running a stored query on a newer snapshot refreshes the
    // results. Two different seeds stand in for two weekly snapshots.
    let q = "MATCH (x:AS)-[:ORIGINATE]-(:Prefix) RETURN count(DISTINCT x.asn)";
    let week1 = Iyp::build(&SimConfig::tiny(), 1)
        .unwrap()
        .query(q)
        .unwrap()
        .single_int();
    let week2 = Iyp::build(&SimConfig::tiny(), 2)
        .unwrap()
        .query(q)
        .unwrap()
        .single_int();
    assert!(week1.is_some() && week2.is_some());
}
