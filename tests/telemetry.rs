//! Telemetry integration: PROFILE ground truth, build-report timings,
//! and the metrics exposition format.

use iyp::{Iyp, SimConfig};
use std::sync::OnceLock;
use std::time::Duration;

fn built() -> &'static Iyp {
    static CELL: OnceLock<Iyp> = OnceLock::new();
    CELL.get_or_init(|| Iyp::build(&SimConfig::tiny(), 42).expect("build"))
}

/// PROFILE's Match operator must report exactly the rows the pattern
/// produced — cross-checked against `RETURN count(*)` ground truth.
#[test]
fn profile_rowcounts_match_count_star_ground_truth() {
    let iyp = built();
    // `count(*)` counts the rows flowing into RETURN, i.e. the output
    // of the operator feeding ProduceResults: the Match itself for a
    // bare pattern, the Filter once a WHERE is attached.
    for (pattern, feeding_op) in [
        // Listing 1's pattern.
        ("MATCH (x:AS)-[:ORIGINATE]-(:Prefix)", "Match"),
        // Listing 2's pattern.
        (
            "MATCH (x:AS)-[:ORIGINATE]-(p:Prefix)-[:ORIGINATE]-(y:AS) WHERE x.asn <> y.asn",
            "Filter",
        ),
    ] {
        let text = format!("{pattern} RETURN count(*)");
        let ground = iyp.query(&text).unwrap().single_int().unwrap() as u64;
        assert!(ground > 0, "no rows for {pattern}");

        let (rs, plan) = iyp.profile(&text).unwrap();
        assert_eq!(rs.single_int(), Some(ground as i64));
        let feeding = plan.children.last().expect("ProduceResults has an input");
        assert_eq!(feeding.op, feeding_op, "plan:\n{}", plan.render());
        assert_eq!(feeding.rows, Some(ground), "plan:\n{}", plan.render());
        // The Match operator's count is internally consistent too: a
        // Filter can only shrink its input.
        let match_op = plan.find("Match").expect("plan has a Match operator");
        assert!(match_op.rows.unwrap() >= ground, "plan:\n{}", plan.render());
        // The final operator produced exactly the one aggregate row.
        assert_eq!(plan.rows, Some(1));
        assert!(plan.time.is_some());

        // The same numbers flow through the PROFILE keyword as a
        // plain result set (the shell / server path).
        let rendered = iyp.query(&format!("PROFILE {text}")).unwrap();
        assert_eq!(rendered.columns, vec!["plan"]);
        let lines: Vec<String> = rendered
            .rows
            .iter()
            .map(|r| r[0].as_scalar().unwrap().as_str().unwrap().to_string())
            .collect();
        assert!(
            lines
                .iter()
                .any(|l| l.contains(feeding_op) && l.contains(&format!("rows={ground}"))),
            "no {feeding_op} rows={ground} in {lines:?}"
        );
    }
}

/// EXPLAIN returns a plan without executing, for all three paper
/// listings verbatim.
#[test]
fn explain_covers_the_paper_listings() {
    let iyp = built();
    let listings = [
        "MATCH (x:AS)-[:ORIGINATE]-(:Prefix) RETURN DISTINCT x.asn",
        "MATCH (x:AS)-[:ORIGINATE]-(p:Prefix)-[:ORIGINATE]-(y:AS)
         WHERE x.asn <> y.asn RETURN DISTINCT p.prefix",
        "MATCH (org:Organization)-[:MANAGED_BY]-(:AS)-[:ORIGINATE]-(pfx:Prefix)-[:CATEGORIZED]-(:Tag {label:'RPKI Valid'})
         WHERE org.name = 'CERN'
         MATCH (pfx)-[:PART_OF]-(:IP)-[:RESOLVES_TO {reference_name:'openintel.tranco1m'}]-(h:HostName)
         RETURN distinct h.name",
    ];
    for listing in listings {
        let rs = iyp.query(&format!("EXPLAIN {listing}")).unwrap();
        assert_eq!(rs.columns, vec!["plan"]);
        let text: Vec<String> = rs
            .rows
            .iter()
            .map(|r| r[0].as_scalar().unwrap().as_str().unwrap().to_string())
            .collect();
        assert!(text[0].starts_with("ProduceResults"), "{text:?}");
        assert!(text.iter().any(|l| l.contains("Match")), "{text:?}");
        // EXPLAIN never carries measurements.
        assert!(text.iter().all(|l| !l.contains("rows=")), "{text:?}");

        let plan = iyp.explain(listing).unwrap();
        assert_eq!(plan.render_lines(), text);
    }
}

/// The build report carries a wall-time measurement for every one of
/// the 46 registered datasets, plus every refinement pass.
#[test]
fn build_report_times_every_dataset() {
    let report = built().report();
    assert_eq!(report.dataset_timings.len(), 46);
    // Timings cover exactly the imported datasets, in import order.
    let timed: Vec<&str> = report
        .dataset_timings
        .iter()
        .map(|(n, _)| n.as_str())
        .collect();
    let imported: Vec<&str> = report.datasets.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(timed, imported);
    for (name, d) in &report.dataset_timings {
        assert!(*d > Duration::ZERO, "{name} has no recorded duration");
        assert_eq!(report.dataset_time(name), Some(*d));
    }
    assert_eq!(report.refinement_timings.len(), report.refinement.len());
    assert!(report.total_time >= report.dataset_timings.iter().map(|(_, d)| *d).sum());

    // The --metrics view renders one line per dataset.
    let view = report.render_timings();
    for (name, _) in &report.datasets {
        assert!(
            view.contains(name.as_str()),
            "{name} missing from timings view"
        );
    }
    assert!(view.contains("total build"));
}

/// The Prometheus-style exposition parses line by line: every line is
/// either a `# TYPE` comment or `name[{labels}] value`.
#[test]
fn metrics_exposition_parses_line_by_line() {
    let iyp = built();
    iyp_telemetry::enable();
    // Generate traffic across metric kinds: counters + histograms from
    // the query path, a gauge directly.
    for _ in 0..3 {
        iyp.query("MATCH (a:AS) RETURN count(a)").unwrap();
    }
    iyp_telemetry::gauge("iyp_test_sessions").set(2);
    let text = iyp_telemetry::render();
    iyp_telemetry::disable();

    assert!(text.contains("# TYPE iyp_cypher_queries_total counter"));
    assert!(text.contains("# TYPE iyp_cypher_query_seconds histogram"));
    assert!(text.contains("# TYPE iyp_test_sessions gauge"));

    let mut samples = 0;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("metric name");
            let kind = parts.next().expect("metric kind");
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "{line}"
            );
            assert!(matches!(kind, "counter" | "gauge" | "histogram"), "{line}");
            assert_eq!(parts.next(), None, "{line}");
            continue;
        }
        // Sample line: name[{labels}] value
        let (series, value) = line.rsplit_once(' ').expect("sample line");
        let base = series.split('{').next().unwrap();
        assert!(!base.is_empty(), "{line}");
        assert!(
            base.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "{line}"
        );
        if let Some(open) = series.find('{') {
            assert!(series.ends_with('}'), "{line}");
            assert!(series[open..].contains('='), "{line}");
        }
        assert!(value.parse::<f64>().is_ok(), "unparseable value in {line}");
        samples += 1;
    }
    assert!(
        samples >= 4,
        "expected counter, histogram buckets, and gauge samples"
    );

    // At least 3 queries were counted while enabled.
    let snap = iyp_telemetry::snapshot();
    let queries = snap
        .iter()
        .find(|(n, _)| n == "iyp_cypher_queries_total")
        .expect("query counter registered");
    match queries.1 {
        iyp_telemetry::MetricValue::Counter(n) => assert!(n >= 3),
        ref other => panic!("unexpected metric type: {other:?}"),
    }
}
