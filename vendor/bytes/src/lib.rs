//! Offline stand-in for the `bytes` crate.
//!
//! Provides the little-endian cursor API (`Buf`/`BufMut`, `Bytes`,
//! `BytesMut`) used by the graph snapshot codec, backed by plain
//! `Vec<u8>` buffers.

/// Read-side cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads raw bytes into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads `len` bytes into a new [`Bytes`], advancing the cursor.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }

    /// Reads a little-endian `u128`.
    fn get_u128_le(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_le_bytes(b)
    }
}

/// Write-side cursor producing a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    fn put_u128_le(&mut self, v: u128) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An owned, readable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the unread bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "buffer underflow");
        let out = Bytes::copy_from_slice(&self.data[self.pos..self.pos + len]);
        self.pos += len;
        out
    }
}

/// A growable write buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u16_le(300);
        w.put_u32_le(70_000);
        w.put_u64_le(1 << 40);
        w.put_i64_le(-9);
        w.put_f64_le(0.25);
        w.put_slice(b"abc");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_i64_le(), -9);
        assert_eq!(r.get_f64_le(), 0.25);
        let tail = r.copy_to_bytes(3);
        assert_eq!(tail.as_ref(), b"abc");
        assert_eq!(r.remaining(), 0);
    }
}
