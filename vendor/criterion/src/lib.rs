//! Offline stand-in for the `criterion` crate.
//!
//! A minimal benchmark harness with the criterion API shape:
//! `Criterion::default()`, `benchmark_group`, `bench_function`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!`
//! macros. Each benchmark runs a short warm-up followed by timed
//! sample batches and reports the median per-iteration time.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Overrides the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            _parent: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, self.test_mode, f);
        self
    }

    /// Reads harness flags. Like real criterion, `--test` (as passed by
    /// `cargo bench -- --test`) switches to test mode: every benchmark
    /// routine runs exactly once, untimed — a CI smoke test that the
    /// benches still work, without the measurement cost.
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Hook kept for API parity; reports are printed as benches run.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the number of samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, name),
            self.sample_size,
            self.test_mode,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of the routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, test_mode: bool, mut f: F) {
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("{:<48} (test mode: 1 iteration)", name);
        return;
    }
    // Calibrate the per-sample iteration count to roughly 5 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!(
        "{:<48} time: [{} {} {}]",
        name,
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{:.2} ns", ns)
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $bench(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
