//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the scoped-thread API the pipeline uses is provided, delegating
//! to `std::thread::scope` (stable since 1.63).

/// Scoped threads.
pub mod thread {
    /// A scope handle passed to the closure given to [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Placeholder scope value passed to spawned closures, mirroring
    /// crossbeam's nested-spawn signature (`|_| ...`).
    #[derive(Clone, Copy)]
    pub struct NestedScope;

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish and returns its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives a
        /// placeholder nested-scope argument for signature parity with
        /// crossbeam (`s.spawn(move |_| ...)`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(NestedScope)),
            }
        }
    }

    /// Runs a closure with a thread scope; all spawned threads join
    /// before this returns. Always `Ok` (panics propagate as panics),
    /// keeping crossbeam's `Result` signature for `.expect(..)` callers.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .expect("crossbeam scope");
        assert_eq!(total, 100);
    }
}
