//! Offline stand-in for the `proptest` crate.
//!
//! Provides deterministic randomised property testing with the proptest
//! API shape the workspace tests use: `proptest!`, `prop_oneof!`,
//! `prop_assert*`, `Strategy`/`prop_map`/`prop_recursive`, `any`,
//! ranges, tuples, `collection::vec`, string-pattern strategies, and
//! `ProptestConfig::with_cases`. Cases are seeded deterministically
//! from the test name and case index, so failures reproduce exactly.
//! (No shrinking: the failing seed is reported instead.)

pub mod strategy;
pub mod test_runner;

/// Collection strategies.
pub mod collection {
    use crate::strategy::{Strategy, TestRng};

    /// Size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Smallest allowed length.
        pub min: usize,
        /// Largest allowed length, inclusive.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of elements from an inner strategy.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + (rng.next_u64() as usize) % span;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob import the tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Chooses uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` case, failing the case
/// (with its seed) rather than panicking mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
            __l,
            __r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts two expressions differ inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: `{:?}`\n{}",
            __l,
            format!($($fmt)*)
        );
    }};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest_each! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal helper for [`proptest!`]. Not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! proptest_each {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __rng);)*
                let mut __case =
                    move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                __case()
            });
        }
        $crate::proptest_each! { ($cfg) $($rest)* }
    };
}
