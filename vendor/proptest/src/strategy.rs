//! Strategies: deterministic generators of random values.

use std::rc::Rc;

/// Deterministic PRNG used for value generation (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e3779b97f4a7c15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Builds a recursive strategy: `f` receives the strategy for the
    /// previous depth and returns the one-level-deeper strategy. The
    /// `_desired_size` and `_expected_branch` hints are accepted for
    /// API parity but unused.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut strat: BoxedStrategy<Self::Value> = Rc::new(self);
        for _ in 0..depth {
            let deeper: BoxedStrategy<Self::Value> = Rc::new(f(strat.clone()));
            // Leaf-bias the union so sizes stay bounded.
            strat = Rc::new(Union::new(vec![strat, deeper]));
        }
        strat
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Rc::new(self)
    }
}

/// A type-erased, cheaply clonable strategy.
pub type BoxedStrategy<T> = Rc<dyn Strategy<Value = T>>;

impl<T> Strategy for Rc<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F: ?Sized> {
    inner: S,
    f: Rc<F>,
}

impl<S: Clone, F: ?Sized> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of the same value type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Builds a union; panics when empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

// -------------------------------------------------------------- ranges

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

// -------------------------------------------------------------- tuples

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

// ------------------------------------------------------------ any::<T>

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// The canonical full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary_value(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary_value(rng: &mut TestRng) -> i128 {
        u128::arbitrary_value(rng) as i128
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        // Mostly ASCII with occasional wider code points.
        if rng.next_u64().is_multiple_of(4) {
            char::from_u32(0xA0 + (rng.next_u64() % 0x2000) as u32).unwrap_or('x')
        } else {
            (0x20 + (rng.next_u64() % 0x5f) as u8) as char
        }
    }
}

// -------------------------------------------------- string patterns

/// `&'static str` literals act as regex-like generation patterns. The
/// supported subset covers what the workspace tests use: literal
/// characters, `[a-z0-9_]`-style classes, the `\PC` (printable) escape,
/// and `{n}` / `{m,n}` repetition.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a char class, an escape, or a literal.
        let atom: Atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .expect("unclosed [ in pattern");
                let class = parse_class(&chars[i + 1..close]);
                i = close + 1;
                Atom::Class(class)
            }
            '\\' => {
                let next = chars.get(i + 1).copied().expect("dangling \\ in pattern");
                i += 2;
                match next {
                    'P' | 'p' => {
                        // \PC / \pC: the "printable" category used in tests.
                        if chars.get(i) == Some(&'C') {
                            i += 1;
                        }
                        Atom::Printable
                    }
                    'd' => Atom::Class(('0'..='9').collect()),
                    'n' => Atom::Literal('\n'),
                    't' => Atom::Literal('\t'),
                    other => Atom::Literal(other),
                }
            }
            '.' => {
                i += 1;
                Atom::Printable
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };

        // Optional repetition.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .expect("unclosed { in pattern");
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse::<usize>().expect("bad repetition"),
                    hi.trim().parse::<usize>().expect("bad repetition"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad repetition");
                    (n, n)
                }
            }
        } else if chars.get(i) == Some(&'*') {
            i += 1;
            (0, 8)
        } else if chars.get(i) == Some(&'+') {
            i += 1;
            (1, 8)
        } else if chars.get(i) == Some(&'?') {
            i += 1;
            (0, 1)
        } else {
            (1, 1)
        };

        let count = min + (rng.next_u64() as usize) % (max - min + 1).max(1);
        for _ in 0..count {
            out.push(atom.draw(rng));
        }
    }
    out
}

enum Atom {
    Literal(char),
    Class(Vec<char>),
    Printable,
}

impl Atom {
    fn draw(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::Class(chars) => chars[rng.below(chars.len() as u64) as usize],
            Atom::Printable => {
                // Printable: mostly ASCII, occasionally wider unicode.
                if rng.next_u64().is_multiple_of(8) {
                    char::from_u32(0xA1 + (rng.next_u64() % 0x500) as u32).unwrap_or('¿')
                } else {
                    (0x20 + (rng.next_u64() % 0x5f) as u8) as char
                }
            }
        }
    }
}

fn parse_class(body: &[char]) -> Vec<char> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            for c in lo..=hi {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(body[i]);
            i += 1;
        }
    }
    assert!(!out.is_empty(), "empty char class in pattern");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_class_pattern() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..50 {
            let s = "[a-z]{0,6}".generate(&mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn printable_pattern() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..50 {
            let s = "\\PC{0,200}".generate(&mut rng);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)] // variants only inspected via Debug
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let _ = strat.generate(&mut rng);
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let u = Union::new(vec![(0u8..1).boxed(), (10u8..11).boxed()]);
        let mut rng = TestRng::from_seed(4);
        let draws: Vec<u8> = (0..100).map(|_| u.generate(&mut rng)).collect();
        assert!(draws.contains(&0));
        assert!(draws.contains(&10));
    }
}
