//! Case execution: deterministic seeds, failure reporting.

use crate::strategy::TestRng;
use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Marks the case as failed with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }

    /// Alias kept for proptest API parity.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::fail(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for TestCaseError {}

/// Runs `cases` seeded executions of a property, panicking (with the
/// reproducing seed) on the first failure.
pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for i in 0..config.cases {
        let seed = derive_seed(name, i);
        let mut rng = TestRng::from_seed(seed);
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest property `{}` failed at case {}/{} (seed {:#018x}):\n{}",
                name, i, config.cases, seed, e
            );
        }
    }
}

/// FNV-1a over the property name, mixed with the case index, so every
/// property gets its own reproducible seed sequence.
fn derive_seed(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ ((case as u64).wrapping_mul(0x9e3779b97f4a7c15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_per_case_and_name() {
        assert_ne!(derive_seed("a", 0), derive_seed("a", 1));
        assert_ne!(derive_seed("a", 0), derive_seed("b", 0));
        assert_eq!(derive_seed("a", 3), derive_seed("a", 3));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failure_panics_with_seed() {
        run(&ProptestConfig::with_cases(5), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
