//! Offline stand-in for the `rand` crate.
//!
//! Deterministic PRNG (xoshiro256++ seeded through splitmix64) exposing
//! the small `Rng`/`SeedableRng`/`StdRng` surface the simulator uses.
//! Determinism for a given seed is part of the contract: simnet worlds
//! must reproduce bit-for-bit across runs.

/// Core random-source trait.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range (`0..n`, `0..=n`, or `0.0..1.0`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256++ seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
        let mut trues = 0;
        for _ in 0..1000 {
            if r.gen_bool(0.5) {
                trues += 1;
            }
        }
        assert!((300..700).contains(&trues));
    }
}
