//! Offline stand-in for the `serde` crate.
//!
//! The real serde is unavailable in this build environment (no network,
//! empty registry), so this crate provides the same *surface* the
//! workspace uses — `Serialize`/`Deserialize` traits plus the matching
//! derive macros — over a much simpler data model: every value
//! serialises to a JSON-shaped [`content::Content`] tree. The vendored
//! `serde_json` renders and parses that tree, so `serde_json::to_string`
//! / `from_str` round-trip exactly as the code expects.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The JSON-shaped data model all values (de)serialise through.
pub mod content {
    /// A serialised value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Content {
        /// JSON null.
        Null,
        /// JSON boolean.
        Bool(bool),
        /// Signed integer.
        I64(i64),
        /// Unsigned integer too large for `i64`.
        U64(u64),
        /// Floating-point number.
        F64(f64),
        /// String.
        Str(String),
        /// Sequence.
        Seq(Vec<Content>),
        /// Map with string keys, insertion-ordered.
        Map(Vec<(String, Content)>),
    }

    /// Looks a key up in a serialised map.
    pub fn map_get<'a>(m: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
        m.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

use content::Content;

/// A deserialisation error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialisation to the [`Content`] data model.
pub trait Serialize {
    /// Converts the value into a content tree.
    fn to_content(&self) -> Content;
}

/// Deserialisation from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs the value from a content tree.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

// ------------------------------------------------------------ primitives

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::new("integer out of range")),
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::new("integer out of range")),
                    _ => Err(DeError::new(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as u64;
                if v <= i64::MAX as u64 { Content::I64(v as i64) } else { Content::U64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::new("integer out of range")),
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::new("integer out of range")),
                    _ => Err(DeError::new(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);

// 128-bit integers do not fit the JSON number model; encode as strings.
impl Serialize for u128 {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for u128 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => s.parse().map_err(|_| DeError::new("bad u128 string")),
            Content::I64(v) if *v >= 0 => Ok(*v as u128),
            Content::U64(v) => Ok(*v as u128),
            _ => Err(DeError::new("expected u128")),
        }
    }
}

impl Serialize for i128 {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for i128 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => s.parse().map_err(|_| DeError::new("bad i128 string")),
            Content::I64(v) => Ok(*v as i128),
            Content::U64(v) => Ok(*v as i128),
            _ => Err(DeError::new("expected i128")),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

macro_rules! de_float {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::F64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    _ => Err(DeError::new("expected number")),
                }
            }
        }
    )*};
}

de_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(s) => s.iter().map(T::from_content).collect(),
            _ => Err(DeError::new("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(s) if s.len() == 2 => {
                Ok((A::from_content(&s[0])?, B::from_content(&s[1])?))
            }
            _ => Err(DeError::new("expected pair")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(s) if s.len() == 3 => Ok((
                A::from_content(&s[0])?,
                B::from_content(&s[1])?,
                C::from_content(&s[2])?,
            )),
            _ => Err(DeError::new("expected triple")),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            _ => Err(DeError::new("expected map")),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_content(&self) -> Content {
        // Sorted for deterministic output.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            _ => Err(DeError::new("expected map")),
        }
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}
