//! Derive macros for the vendored `serde` facade.
//!
//! This is an offline stand-in for the real `serde_derive`: it derives the
//! simplified `Serialize`/`Deserialize` traits defined by the vendored
//! `serde` crate (which funnel through a JSON-like `Content` tree rather
//! than the full serde data model). It supports exactly the shapes this
//! workspace uses: named structs, tuple/newtype structs, unit structs,
//! and enums with unit / newtype / tuple / struct variants, plus the
//! `#[serde(skip)]` field attribute. Generics are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_serialize(&name, &shape)
        .parse()
        .expect("serde_derive: generated code must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_deserialize(&name, &shape)
        .parse()
        .expect("serde_derive: generated code must parse")
}

// ---------------------------------------------------------------- parsing

/// Inspects an attribute group (the `[...]` body). Returns `None` for
/// non-serde attributes (doc comments, etc.) and `Some(true)` for
/// `#[serde(skip)]`. Any other serde attribute (`rename`, `default`,
/// `tag`, ...) is not implemented by this stand-in, so it panics —
/// a compile error — rather than silently producing wrong encodings.
fn attr_is_skip(group: &proc_macro::Group) -> Option<bool> {
    let mut toks = group.stream().into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match toks.next() {
        Some(TokenTree::Group(inner)) => inner,
        other => panic!("serde_derive: malformed serde attribute near {other:?}"),
    };
    let mut skip = false;
    for t in inner.stream() {
        match &t {
            TokenTree::Ident(id) if id.to_string() == "skip" => skip = true,
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!(
                "serde_derive: unsupported serde attribute `{other}`; \
                 this vendored stand-in only implements #[serde(skip)]"
            ),
        }
    }
    Some(skip)
}

/// Consumes leading attributes; returns whether any was `serde(skip)`.
fn eat_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while *i + 1 < toks.len() {
        match (&toks[*i], &toks[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g)) if p.as_char() == '#' => {
                if g.delimiter() == Delimiter::Bracket && attr_is_skip(g) == Some(true) {
                    skip = true;
                }
                *i += 2;
            }
            _ => break,
        }
    }
    skip
}

/// Consumes a `pub` / `pub(crate)` visibility marker if present.
fn eat_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> (String, Shape) {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    eat_attrs(&toks, &mut i);
    eat_vis(&toks, &mut i);
    let kw = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (type {name})");
    }
    let shape = match kw.as_str() {
        "struct" => match toks.get(i) {
            None => Shape::UnitStruct,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    (name, shape)
}

/// Counts fields in a tuple-struct/-variant body (top-level commas,
/// ignoring commas nested inside `<...>` generics).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_tokens = false;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        fields += 1;
    }
    fields
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let skip = eat_attrs(&toks, &mut i);
        eat_vis(&toks, &mut i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other}"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field {name}, got {other}"),
        }
        // Skip the type: consume until a top-level comma.
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        eat_attrs(&toks, &mut i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other}"),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ------------------------------------------------------------- generation

const CONTENT: &str = "::serde::content::Content";

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => format!("{CONTENT}::Null"),
        Shape::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_content(&self.{k})"))
                .collect();
            format!("{CONTENT}::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut __m: ::std::vec::Vec<(::std::string::String, \
                 ::serde::content::Content)> = ::std::vec::Vec::new();",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "__m.push((\"{0}\".to_string(), ::serde::Serialize::to_content(&self.{0})));",
                    f.name
                ));
            }
            s.push_str(&format!("{CONTENT}::Map(__m)"));
            s
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => {CONTENT}::Str(\"{vn}\".to_string()),"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => {CONTENT}::Map(::std::vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::to_content(__f0))]),"
                    )),
                    VariantKind::Tuple(n) => {
                        let pats: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::to_content(__f{k})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {CONTENT}::Map(::std::vec![(\"{vn}\".to_string(), \
                             {CONTENT}::Seq(::std::vec![{}]))]),",
                            pats.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let pats: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_content({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {CONTENT}::Map(::std::vec![(\"{vn}\"\
                             .to_string(), {CONTENT}::Map(::std::vec![{}]))]),",
                            pats.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\
             fn to_content(&self) -> ::serde::content::Content {{ {body} }}\
         }}"
    )
}

fn gen_named_de(path: &str, fields: &[Field], map_var: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!("{}: ::core::default::Default::default(),", f.name));
        } else {
            // Absent keys deserialize from Null, matching real serde:
            // Option<T> fields become None; required types keep a clear
            // "missing field" error instead of Null's type mismatch.
            inits.push_str(&format!(
                "{0}: match ::serde::content::map_get({map_var}, \"{0}\") {{\
                     ::core::option::Option::Some(__v) => \
                         ::serde::Deserialize::from_content(__v)?,\
                     ::core::option::Option::None => \
                         ::serde::Deserialize::from_content(&::serde::content::Content::Null)\
                             .map_err(|_| ::serde::DeError::new(\"missing field `{0}`\"))?,\
                 }},",
                f.name
            ));
        }
    }
    format!("::core::result::Result::Ok({path} {{ {inits} }})")
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let err = |msg: &str| format!("::core::result::Result::Err(::serde::DeError::new(\"{msg}\"))");
    let body = match shape {
        Shape::UnitStruct => format!("::core::result::Result::Ok({name})"),
        Shape::TupleStruct(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_content(&__s[{k}])?"))
                .collect();
            format!(
                "match __c {{ {CONTENT}::Seq(__s) if __s.len() == {n} => \
                 ::core::result::Result::Ok({name}({})), _ => {} }}",
                items.join(", "),
                err(&format!("expected {n}-element sequence for {name}"))
            )
        }
        Shape::NamedStruct(fields) => format!(
            "match __c {{ {CONTENT}::Map(__m) => {{ {} }}, _ => {} }}",
            gen_named_de(name, fields, "__m"),
            err(&format!("expected map for {name}"))
        ),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_content(__v)?)),"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_content(&__s[{k}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => match __v {{ {CONTENT}::Seq(__s) if __s.len() == {n} => \
                             ::core::result::Result::Ok({name}::{vn}({})), _ => {} }},",
                            items.join(", "),
                            err(&format!("expected {n}-element sequence for {name}::{vn}"))
                        ));
                    }
                    VariantKind::Named(fields) => data_arms.push_str(&format!(
                        "\"{vn}\" => match __v {{ {CONTENT}::Map(__fm) => {{ {} }}, _ => {} }},",
                        gen_named_de(&format!("{name}::{vn}"), fields, "__fm"),
                        err(&format!("expected map for {name}::{vn}"))
                    )),
                }
            }
            format!(
                "match __c {{\
                     {CONTENT}::Str(__s) => match __s.as_str() {{ {unit_arms} _ => {e1} }},\
                     {CONTENT}::Map(__m) if __m.len() == 1 => {{\
                         let (__k, __v) = &__m[0];\
                         match __k.as_str() {{ {data_arms} _ => {e2} }}\
                     }},\
                     _ => {e3},\
                 }}",
                e1 = err(&format!("unknown unit variant of {name}")),
                e2 = err(&format!("unknown variant of {name}")),
                e3 = err(&format!("expected variant encoding for {name}"))
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\
             fn from_content(__c: &::serde::content::Content) -> \
                 ::core::result::Result<Self, ::serde::DeError> {{ {body} }}\
         }}"
    )
}
