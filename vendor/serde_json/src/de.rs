//! JSON text parsing.

use crate::{Error, Map, Number, Value};
use serde::Deserialize;

/// Maximum nesting depth, matching real serde_json's recursion limit.
/// Bounds stack growth so a deeply nested document (e.g. `[[[[...`) from
/// an untrusted client returns an error instead of overflowing the stack.
const MAX_DEPTH: usize = 128;

/// Parses a JSON document into a deserialisable type.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_content(&serde::Serialize::to_content(&value))?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::new(format!(
                "recursion limit exceeded ({MAX_DEPTH} levels) at byte {}",
                self.pos
            )));
        }
        let value = self.parse_value_inner();
        self.depth -= 1;
        value
    }

    fn parse_value_inner(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\x08'),
                    Some(b'f') => out.push('\x0c'),
                    Some(b'u') => {
                        let first = self.parse_hex4()?;
                        let code = if (0xd800..0xdc00).contains(&first) {
                            // High surrogate: a \uXXXX low surrogate must follow.
                            self.eat_literal("\\u")?;
                            let low = self.parse_hex4()?;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            0x10000 + ((first - 0xd800) << 10) + (low - 0xdc00)
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(Error::new(format!(
                        "control character 0x{b:02x} must be escaped in string at byte {}",
                        self.pos - 1
                    )))
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the multi-byte UTF-8 sequence.
                    let start = self.pos - 1;
                    let width = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(Error::new("invalid utf-8 in string")),
                    };
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated utf-8 in string"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        if !chunk.iter().all(|b| b.is_ascii_hexdigit()) {
            return Err(Error::new("bad \\u escape"));
        }
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part per RFC 8259: `0` or a nonzero digit followed by
        // more digits; a leading zero may not be followed by a digit.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(Error::new(format!(
                        "leading zero in number at byte {start}"
                    )));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(Error::new(format!("invalid number at byte {start}"))),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(Error::new(format!(
                    "expected digit after '.' at byte {}",
                    self.pos
                )));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(Error::new(format!(
                    "expected digit in exponent at byte {}",
                    self.pos
                )));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from(v)));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from(v)));
            }
        }
        let v: f64 = text
            .parse()
            .map_err(|_| Error::new(format!("invalid number '{}'", text)))?;
        Number::from_f64(v)
            .map(Value::Number)
            .ok_or_else(|| Error::new("non-finite number"))
    }
}

#[cfg(test)]
mod tests {
    use super::from_str;
    use crate::Value;

    #[test]
    fn depth_limit_rejects_deep_nesting() {
        // 200k-deep "[[[..." fits the server's request cap but must error
        // cleanly instead of overflowing the stack.
        let deep = "[".repeat(200_000);
        let err = from_str::<Value>(&deep).unwrap_err();
        assert!(err.to_string().contains("recursion limit"), "{err}");

        let obj = "{\"k\":".repeat(200_000);
        let err = from_str::<Value>(&obj).unwrap_err();
        assert!(err.to_string().contains("recursion limit"), "{err}");
    }

    #[test]
    fn depth_limit_allows_reasonable_nesting() {
        let n = 100;
        let doc = format!("{}{}", "[".repeat(n), "]".repeat(n));
        from_str::<Value>(&doc).unwrap();
    }

    #[test]
    fn rejects_raw_control_chars_in_strings() {
        assert!(from_str::<Value>("\"a\nb\"").is_err());
        assert!(from_str::<Value>("\"a\u{0}b\"").is_err());
        // Escaped forms stay valid.
        assert_eq!(from_str::<Value>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn rejects_malformed_numbers() {
        for bad in ["01", "-01", "1.", ".5", "1e", "1e+", "-", "1.e3"] {
            assert!(from_str::<Value>(bad).is_err(), "accepted {bad:?}");
        }
        for good in ["0", "-0", "10", "1.5", "1e3", "-0.5E+10", "0.0"] {
            assert!(from_str::<Value>(good).is_ok(), "rejected {good:?}");
        }
    }

    #[test]
    fn rejects_bad_unicode_escapes() {
        // from_str_radix would accept a leading '+'; JSON must not.
        assert!(from_str::<Value>("\"\\u+123\"").is_err());
        assert!(from_str::<Value>("\"\\u12g4\"").is_err());
        assert_eq!(from_str::<Value>("\"\\u0041\"").unwrap(), "A");
    }

    #[test]
    fn missing_option_fields_deserialize_to_none() {
        #[derive(Debug, serde::Deserialize)]
        struct Ref {
            name: String,
            info_url: Option<String>,
        }

        let r: Ref = from_str("{\"name\":\"x\"}").unwrap();
        assert_eq!(r.name, "x");
        assert_eq!(r.info_url, None);

        // Required (non-Option) fields still error clearly when absent.
        let err = from_str::<Ref>("{\"info_url\":\"u\"}").unwrap_err();
        assert!(err.to_string().contains("missing field `name`"), "{err}");
    }
}
