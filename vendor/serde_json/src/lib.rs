//! Offline stand-in for the `serde_json` crate.
//!
//! Implements the subset of serde_json the workspace uses: the [`Value`]
//! tree, the [`json!`] macro, [`to_string`], [`to_value`], [`from_str`],
//! and an insertion-ordered [`Map`]. Values parse from and render to
//! real JSON text.

use serde::content::Content;
use serde::{Deserialize, Serialize};
use std::fmt;

mod de;
mod ser;

pub use de::from_str;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Map<String, Value>),
}

/// A JSON number: integer or float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number {
    n: N,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum N {
    I(i64),
    U(u64),
    F(f64),
}

impl Number {
    /// Returns the number as `i64` if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::I(v) => Some(v),
            N::U(v) => i64::try_from(v).ok(),
            N::F(_) => None,
        }
    }

    /// Returns the number as `u64` if it fits.
    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::I(v) => u64::try_from(v).ok(),
            N::U(v) => Some(v),
            N::F(_) => None,
        }
    }

    /// Returns the number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self.n {
            N::I(v) => Some(v as f64),
            N::U(v) => Some(v as f64),
            N::F(v) => Some(v),
        }
    }

    /// Builds a number from an `f64`; returns `None` for NaN/infinite.
    pub fn from_f64(v: f64) -> Option<Number> {
        if v.is_finite() {
            Some(Number { n: N::F(v) })
        } else {
            None
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.n {
            N::I(v) => write!(f, "{}", v),
            N::U(v) => write!(f, "{}", v),
            // {:?} keeps a trailing ".0" on whole floats, like serde_json.
            N::F(v) => write!(f, "{:?}", v),
        }
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Self {
        Number { n: N::I(v) }
    }
}

impl From<u64> for Number {
    fn from(v: u64) -> Self {
        if v <= i64::MAX as u64 {
            Number { n: N::I(v as i64) }
        } else {
            Number { n: N::U(v) }
        }
    }
}

/// An insertion-ordered string-keyed map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a key/value pair, replacing any existing value for the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in self.entries.iter_mut() {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// True if the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;
    fn into_iter(self) -> Self::IntoIter {
        fn split(e: &(String, Value)) -> (&String, &Value) {
            (&e.0, &e.1)
        }
        self.entries.iter().map(split)
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// Returns the string slice if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as `i64` if it is an integer number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Returns the value as `u64` if it is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Returns the value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the array if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the object if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True if this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup that returns `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        ser::write_value(f, self)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

// ----------------------------------------------------------- conversions

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::Number(Number::from(v as i64)) }
        }
    )*};
}

from_int!(i8, i16, i32, i64, u8, u16, u32, isize);

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(Number::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(Number::from(v as u64))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Number::from_f64(v as f64)
            .map(Value::Number)
            .unwrap_or(Value::Null)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Number::from_f64(v)
            .map(Value::Number)
            .unwrap_or(Value::Null)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl From<Map<String, Value>> for Value {
    fn from(m: Map<String, Value>) -> Self {
        Value::Object(m)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

// ----------------------------------------------- comparisons (for tests)

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64() == Some(*other as i64)
            }
        }
    )*};
}

eq_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        self.as_u64() == Some(*other as u64)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<f32> for Value {
    fn eq(&self, other: &f32) -> bool {
        self.as_f64() == Some(*other as f64)
    }
}

// ------------------------------------------- serde data-model bridging

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(n) => match n.n {
                N::I(v) => Content::I64(v),
                N::U(v) => Content::U64(v),
                N::F(v) => Content::F64(v),
            },
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(a) => Content::Seq(a.iter().map(Serialize::to_content).collect()),
            Value::Object(m) => {
                Content::Map(m.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
            }
        }
    }
}

impl Serialize for Map<String, Value> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> Result<Self, serde::DeError> {
        Ok(content_to_value(c))
    }
}

fn content_to_value(c: &Content) -> Value {
    match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(*b),
        Content::I64(v) => Value::Number(Number::from(*v)),
        Content::U64(v) => Value::Number(Number::from(*v)),
        Content::F64(v) => Number::from_f64(*v)
            .map(Value::Number)
            .unwrap_or(Value::Null),
        Content::Str(s) => Value::String(s.clone()),
        Content::Seq(s) => Value::Array(s.iter().map(content_to_value).collect()),
        Content::Map(m) => Value::Object(
            m.iter()
                .map(|(k, v)| (k.clone(), content_to_value(v)))
                .collect(),
        ),
    }
}

/// A serialisation or deserialisation error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialises a value to compact JSON text.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let v = content_to_value(&value.to_content());
    Ok(v.to_string())
}

/// Serialises a value to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let v = content_to_value(&value.to_content());
    let mut out = String::new();
    ser::write_pretty(&mut out, &v, 0);
    Ok(out)
}

/// Converts a serialisable value into a [`Value`] tree.
pub fn to_value<T: ?Sized + Serialize>(value: &T) -> Result<Value, Error> {
    Ok(content_to_value(&value.to_content()))
}

/// Converts a [`Value`] tree into a deserialisable type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_content(&value.to_content())?)
}

/// Builds a [`Value`] from JSON-like literal syntax.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Internal tt-muncher behind [`json!`]. Not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // ------------------------------------------------- array elements
    // Done, with or without trailing comma.
    (@array [$($elems:expr,)*]) => {
        <[_]>::into_vec(::std::boxed::Box::new([$($elems,)*]))
    };
    (@array [$($elems:expr),*]) => {
        <[_]>::into_vec(::std::boxed::Box::new([$($elems),*]))
    };
    // Next element is a keyword or nested structure.
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(
            @array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*
        )
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(
            @array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*
        )
    };
    // Next element is an expression followed by a comma.
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    // Last element is an expression with no trailing comma.
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    // Comma after the most recent element.
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ------------------------------------------------- object entries
    // The state is: accumulated-key parens, remaining tokens, and a
    // copy of the remaining tokens for error recovery.
    (@object $object:ident () () ()) => {};
    // Insert the completed entry, then continue after the comma.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Insert the final entry.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    // Value is a keyword or nested structure.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*
        );
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*
        );
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*
        );
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*
        );
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*
        );
    };
    // Value is an expression followed by a comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*
        );
    };
    // Value is the last expression, no trailing comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!($value))
        );
    };
    // Munch one more token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ------------------------------------------------- primary forms
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => { $crate::to_value(&$other).unwrap() };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({"a": 1, "b": [true, null, "x"], "c": {"d": 2.5}});
        assert_eq!(v["a"], 1);
        assert_eq!(v["b"][0], true);
        assert!(v["b"][1].is_null());
        assert_eq!(v["b"][2], "x");
        assert_eq!(v["c"]["d"], 2.5);
    }

    #[test]
    fn roundtrip_text() {
        let v = json!({"s": "he\"llo\n", "n": -3, "f": 1.0, "a": [1, 2]});
        let text = v.to_string();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn float_renders_with_point() {
        assert_eq!(json!(1.0).to_string(), "1.0");
        assert_eq!(json!(0.25).to_string(), "0.25");
    }

    #[test]
    fn expression_values() {
        let name = String::from("ok");
        let v = json!({"k": name, "n": 2 + 3});
        assert_eq!(v["k"], "ok");
        assert_eq!(v["n"], 5);
    }
}
