//! JSON text rendering.

use crate::Value;
use std::fmt;

pub(crate) fn write_value(f: &mut fmt::Formatter<'_>, v: &Value) -> fmt::Result {
    match v {
        Value::Null => f.write_str("null"),
        Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write!(f, "{}", n),
        Value::String(s) => write_escaped(f, s),
        Value::Array(a) => {
            f.write_str("[")?;
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_value(f, item)?;
            }
            f.write_str("]")
        }
        Value::Object(m) => {
            f.write_str("{")?;
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_escaped(f, k)?;
                f.write_str(":")?;
                write_value(f, val)?;
            }
            f.write_str("}")
        }
    }
}

fn write_escaped(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\x08' => f.write_str("\\b")?,
            '\x0c' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

pub(crate) fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    use fmt::Write;
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                let _ = write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => {
            let _ = write!(out, "{}", other);
        }
    }
}
